//! A std-only generic worker pool with a work-stealing scheduler.
//!
//! [`run_tasks`] executes one closure call per input item across a fixed
//! number of OS threads and returns the results **in input order**. It is
//! the shared scheduler behind `tdc-harness`'s experiment batches,
//! `tdc-serve`'s sweep endpoint, and `tdc-lint`'s parallel file scan.
//!
//! Scheduling is work stealing over per-worker deques (DESIGN.md §16):
//! every worker owns a [`StealDeque`] seeded before the threads start
//! with a deterministic contiguous slice of the task indices. A worker
//! pops its own deque LIFO; when that runs dry it steals FIFO from
//! victims chosen by a seeded deterministic rotation, so a straggler's
//! leftover tasks migrate to whichever cores fall idle. The deque is a
//! Chase–Lev-style two-ended queue reduced to the pre-seeded case — no
//! pushes ever happen after the workers start, so the task buffer is
//! immutable and the whole structure is plain safe Rust: two atomics
//! and a shared slice, no `unsafe` anywhere.
//!
//! Scheduling order must be irrelevant to results: each call should be a
//! pure function of its item (and index), and every result lands in its
//! input-index slot, so outputs are bit-identical whether the batch runs
//! on one thread or sixteen and regardless of which worker stole what.
//! [`run_tasks`] itself does no timing and no I/O; callers that want
//! per-task wall-clock or progress reporting do it inside the closure
//! (see `tdc-harness::pool`).
//!
//! [`run_tasks_telemetry`] is the observable variant: identical results
//! and scheduling, plus per-worker scheduler telemetry
//! ([`crate::obs::PoolTelemetry`] — tasks run split into owned vs
//! stolen, steal attempt/failure counters, busy/idle ns, source-deque
//! depth samples, per-task spans) for `results/metrics.json` and the
//! Perfetto pool track. The timing it collects is about the schedule,
//! never an input to any task, so result determinism is unaffected.

use crate::obs::{LogHistogram, PoolTelemetry, TaskSpan, WorkerTelemetry};
use std::sync::atomic::{fence, AtomicIsize, Ordering};
use std::sync::Mutex;
use std::time::Instant; // tdc-lint: allow(time-source) schedule telemetry only

/// Outcome of one [`StealDeque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// A task index was claimed.
    Task(usize),
    /// The deque was observed empty; it will stay empty (no pushes).
    Empty,
    /// Lost a claim race with the owner or another thief; retry.
    Retry,
}

/// A pre-seeded Chase–Lev-style work-stealing deque of task indices.
///
/// The general Chase–Lev deque lets the owner push while thieves steal,
/// which forces a growable circular buffer and `unsafe` publication. The
/// pool never pushes after workers start — every deque is seeded once,
/// up front, with its worker's slice of the batch — so the buffer here
/// is an immutable `Vec<usize>` and only two atomic cursors move:
/// `top` (the steal end, monotonically increasing under CAS) and
/// `bottom` (the owner end, moved only by the owner). The memory-order
/// protocol is the published C11 formulation (SeqCst fences on the
/// owner-take and thief-steal paths, CAS on `top` for the last-element
/// race), which guarantees each seeded index is claimed exactly once.
///
/// `take` is owner-only by contract: it is safe Rust either way, but
/// calling it from two threads concurrently can double-claim an index.
/// `steal` may be called from any number of threads.
#[derive(Debug)]
pub struct StealDeque {
    tasks: Vec<usize>,
    /// Next index to steal (FIFO end). Only ever incremented, via CAS.
    top: AtomicIsize,
    /// One past the next index to take (LIFO end). Owner-written.
    bottom: AtomicIsize,
}

impl StealDeque {
    /// A deque holding `tasks`, all still unclaimed. The owner's
    /// [`StealDeque::take`] consumes from the back of the vector,
    /// thieves' [`StealDeque::steal`] from the front.
    pub fn seeded(tasks: Vec<usize>) -> Self {
        let n = tasks.len() as isize;
        Self {
            tasks,
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(n),
        }
    }

    /// Owner-side LIFO pop: claims the back-most unclaimed index, or
    /// `None` once the deque is drained (which is permanent — there
    /// are no pushes, so `None` means this deque is done).
    pub fn take(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t < b {
            // At least two entries remain; no thief can reach index b.
            return Some(self.tasks[b as usize]);
        }
        if t == b {
            // Last entry: race any thieves for it on the `top` cursor.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return if won { Some(self.tasks[b as usize]) } else { None };
        }
        // Empty: restore bottom so cursors stay in the canonical range.
        self.bottom.store(b + 1, Ordering::Relaxed);
        None
    }

    /// Thief-side FIFO steal: claims the front-most unclaimed index.
    /// Because the buffer is immutable, a successful CAS on `top` is
    /// the entire claim — there is no use-after-reclaim window.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Task(self.tasks[t as usize])
        } else {
            Steal::Retry
        }
    }

    /// Unclaimed entries remaining. Exact when no other thread is
    /// mid-claim; otherwise a snapshot (telemetry uses it as such).
    pub fn len(&self) -> usize {
        let t = self.top.load(Ordering::Relaxed);
        let b = self.bottom.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Whether [`StealDeque::len`] is zero.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Seeds one deque per worker with a contiguous slice of `0..total`,
/// back-loaded so the owner's LIFO pops walk the slice in ascending
/// index order while thieves chew from the descending end.
fn seed_deques(total: usize, threads: usize) -> Vec<StealDeque> {
    (0..threads)
        .map(|w| {
            let lo = w * total / threads;
            let hi = (w + 1) * total / threads;
            StealDeque::seeded((lo..hi).rev().collect())
        })
        .collect()
}

/// Deterministic starting offset of worker `me`'s victim rotation
/// (SplitMix64 finalizer over the worker id — seeded, not random).
fn rotation_start(me: usize, threads: usize) -> usize {
    let mut z = (me as u64) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % threads as u64) as usize
}

/// Outcome of one full sweep of steal attempts over every other
/// worker's deque, in rotation order from `start`.
enum Sweep {
    /// Claimed `index`; `depth` is the victim deque's remaining size.
    Stolen { index: usize, depth: usize, attempts: u64 },
    /// Every victim observed empty: the whole batch is claimed.
    Drained { attempts: u64 },
    /// Nothing claimed but at least one race lost: sweep again.
    Contended { attempts: u64 },
}

fn sweep(deques: &[StealDeque], me: usize, start: usize) -> Sweep {
    let n = deques.len();
    let mut attempts = 0;
    let mut contended = false;
    for step in 0..n {
        let victim = (start + step) % n;
        if victim == me {
            continue;
        }
        attempts += 1;
        match deques[victim].steal() {
            Steal::Task(index) => {
                let depth = deques[victim].len();
                return Sweep::Stolen { index, depth, attempts };
            }
            Steal::Retry => contended = true,
            Steal::Empty => {}
        }
    }
    if contended {
        Sweep::Contended { attempts }
    } else {
        Sweep::Drained { attempts }
    }
}

/// Runs `work(index, &items[index])` for every item on `threads` worker
/// threads and returns the results in input order.
///
/// `threads` is clamped to `1..=items.len()`. Panics in `work` propagate
/// out of the enclosing thread scope (poisoning nothing the caller keeps).
pub fn run_tasks<T, R, F>(items: &[T], threads: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, total);
    let deques = seed_deques(total, threads);
    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let (work, deques, slots) = (&work, &deques, &slots);
        for me in 0..threads {
            scope.spawn(move || {
                let run = |i: usize| {
                    let result = work(i, &items[i]);
                    *slots[i].lock().expect("result slot poisoned") = Some(result);
                };
                while let Some(i) = deques[me].take() {
                    run(i);
                }
                let mut start = rotation_start(me, threads);
                loop {
                    match sweep(deques, me, start) {
                        Sweep::Stolen { index, .. } => run(index),
                        Sweep::Contended { .. } => std::hint::spin_loop(),
                        Sweep::Drained { .. } => break,
                    }
                    start = (start + 1) % threads;
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker scope joined with task unfinished")
        })
        .collect()
}

/// Like [`run_tasks`], additionally collecting scheduler telemetry:
/// per-worker task counts with owned-vs-stolen attribution, steal
/// attempt/failure counters, busy/idle time, source-deque depth samples
/// at each dequeue, and one span per task for trace export.
///
/// The results vector is computed exactly as [`run_tasks`] computes it;
/// only the telemetry side-channel differs. Per worker, `busy_ns` is
/// clamped to the batch wall time and `idle_ns` is the remainder, so
/// `busy + idle == wall` holds by construction and straggler tails
/// (the work-stealing motivation) read directly off `idle_ns`.
pub fn run_tasks_telemetry<T, R, F>(
    items: &[T],
    threads: usize,
    work: F,
) -> (Vec<R>, PoolTelemetry)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return (Vec::new(), PoolTelemetry::default());
    }
    let threads = threads.clamp(1, total);
    let deques = seed_deques(total, threads);
    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    #[derive(Default)]
    struct WorkerLog {
        owned: u64,
        stolen: u64,
        steal_attempts: u64,
        steal_failures: u64,
        busy_ns: u64,
        spans: Vec<TaskSpan>,
        depth: LogHistogram,
    }
    let launch = Instant::now(); // tdc-lint: allow(time-source)

    let logs: Vec<WorkerLog> = std::thread::scope(|scope| {
        let (work, deques, slots) = (&work, &deques, &slots);
        let handles: Vec<_> = (0..threads)
            .map(|me| {
                scope.spawn(move || {
                    let mut log = WorkerLog::default();
                    let mut start = rotation_start(me, threads);
                    loop {
                        // Claim a task: own deque first, then steal.
                        let (i, stolen, depth) = if let Some(i) = deques[me].take() {
                            (i, false, deques[me].len())
                        } else {
                            match sweep(deques, me, start) {
                                Sweep::Stolen { index, depth, attempts } => {
                                    log.steal_attempts += attempts;
                                    log.steal_failures += attempts - 1;
                                    start = (start + 1) % threads;
                                    (index, true, depth)
                                }
                                Sweep::Contended { attempts } => {
                                    log.steal_attempts += attempts;
                                    log.steal_failures += attempts;
                                    start = (start + 1) % threads;
                                    std::hint::spin_loop();
                                    continue;
                                }
                                Sweep::Drained { attempts } => {
                                    log.steal_attempts += attempts;
                                    log.steal_failures += attempts;
                                    break;
                                }
                            }
                        };
                        let begin = Instant::now(); // tdc-lint: allow(time-source)
                        let result = work(i, &items[i]);
                        let dur_ns = begin.elapsed().as_nanos() as u64;
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                        if stolen {
                            log.stolen += 1;
                        } else {
                            log.owned += 1;
                        }
                        log.busy_ns += dur_ns;
                        log.depth.record(depth as u64);
                        log.spans.push(TaskSpan {
                            worker: me,
                            index: i,
                            start_ns: begin.duration_since(launch).as_nanos() as u64,
                            dur_ns,
                            stolen,
                        });
                    }
                    log
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });

    let wall_ns = launch.elapsed().as_nanos() as u64;
    let mut telemetry = PoolTelemetry {
        wall_ns,
        ..PoolTelemetry::default()
    };
    for log in logs {
        // Clamp so `busy + idle == wall` holds exactly: per-task timer
        // reads can sum past the single wall read on a loaded host.
        let busy_ns = log.busy_ns.min(wall_ns);
        telemetry.workers.push(WorkerTelemetry {
            tasks: log.owned + log.stolen,
            busy_ns,
            idle_ns: wall_ns - busy_ns,
            owned: log.owned,
            stolen: log.stolen,
            steal_attempts: log.steal_attempts,
            steal_failures: log.steal_failures,
        });
        telemetry.queue_depth.merge(&log.depth);
        telemetry.spans.extend(log.spans);
    }
    telemetry.spans.sort_by_key(|s| (s.start_ns, s.index));
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker scope joined with task unfinished")
        })
        .collect();
    (results, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_tasks(&items, 7, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out.len(), 100);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u32> = (0..37).collect();
        let f = |_: usize, &x: &u32| x.wrapping_mul(2654435761);
        assert_eq!(run_tasks(&items, 1, f), run_tasks(&items, 16, f));
    }

    #[test]
    fn empty_input_and_oversubscription() {
        let none: Vec<u8> = Vec::new();
        assert!(run_tasks(&none, 4, |_, &x| x).is_empty());
        // More threads than items: clamped, still correct.
        let out = run_tasks(&[1u8, 2], 64, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn non_copy_results_move_out_cleanly() {
        let items = vec!["a", "bb", "ccc"];
        let out = run_tasks(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:bb", "2:ccc"]);
    }

    #[test]
    fn deque_seeding_is_contiguous_and_owner_ascending() {
        let deques = seed_deques(10, 3);
        assert_eq!(deques.len(), 3);
        let mut covered = Vec::new();
        for d in &deques {
            let mut mine = Vec::new();
            while let Some(i) = d.take() {
                mine.push(i);
            }
            // Owner-side pops walk the slice in ascending index order.
            assert!(mine.windows(2).all(|w| w[0] < w[1]), "{mine:?}");
            covered.extend(mine);
        }
        covered.sort_unstable();
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn telemetry_variant_matches_plain_results() {
        let items: Vec<u64> = (0..50).collect();
        let f = |i: usize, &x: &u64| x.wrapping_mul(i as u64 + 3);
        let plain = run_tasks(&items, 4, f);
        let (traced, telemetry) = run_tasks_telemetry(&items, 4, f);
        assert_eq!(plain, traced);
        assert_eq!(telemetry.workers.len(), 4);
        let tasks: u64 = telemetry.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(tasks, 50);
        assert_eq!(telemetry.spans.len(), 50);
        assert_eq!(telemetry.queue_depth.count(), 50);
        // Every input index executed exactly once.
        let mut seen: Vec<usize> = telemetry.spans.iter().map(|s| s.index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
        for w in &telemetry.workers {
            assert_eq!(
                w.busy_ns + w.idle_ns,
                telemetry.wall_ns,
                "busy + idle must equal the batch wall time exactly"
            );
            assert_eq!(w.tasks, w.owned + w.stolen, "attribution must cover tasks");
        }
        // Span attribution agrees with the per-worker counters.
        let stolen_spans = telemetry.spans.iter().filter(|s| s.stolen).count() as u64;
        let stolen_total: u64 = telemetry.workers.iter().map(|w| w.stolen).sum();
        assert_eq!(stolen_spans, stolen_total);
    }

    #[test]
    fn skewed_workload_records_steals() {
        // One boulder at the front of worker 0's slice, pebbles behind
        // it: the other workers drain their slices and must steal the
        // boulder-owner's leftovers for the batch to finish.
        let items: Vec<u64> = (0..64).map(|i| if i == 0 { 200_000 } else { 50 }).collect();
        let (_, telemetry) = run_tasks_telemetry(&items, 4, |_, &spin| {
            let mut acc = 0u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            acc
        });
        let attempts: u64 = telemetry.workers.iter().map(|w| w.steal_attempts).sum();
        assert!(attempts > 0, "a skewed batch must at least attempt steals");
    }

    #[test]
    fn telemetry_on_empty_input_is_empty() {
        let none: Vec<u8> = Vec::new();
        let (out, telemetry) = run_tasks_telemetry(&none, 4, |_, &x| x);
        assert!(out.is_empty());
        assert!(telemetry.workers.is_empty());
        assert_eq!(telemetry.queue_depth.count(), 0);
    }
}
