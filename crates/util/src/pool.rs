//! A std-only generic worker pool.
//!
//! [`run_tasks`] executes one closure call per input item across a fixed
//! number of OS threads (`std::thread::scope` + an atomic work index; no
//! external crates) and returns the results **in input order**. It is the
//! shared scheduler behind `tdc-harness`'s experiment batches and
//! `tdc-lint`'s parallel file scan.
//!
//! Scheduling order must be irrelevant to results: each call should be a
//! pure function of its item (and index), so outputs are bit-identical
//! whether the batch runs on one thread or sixteen. [`run_tasks`] itself
//! does no timing and no I/O; callers that want per-task wall-clock or
//! progress reporting do it inside the closure (see `tdc-harness::pool`).
//!
//! [`run_tasks_telemetry`] is the observable variant: identical results
//! and scheduling, plus per-worker scheduler telemetry
//! ([`crate::obs::PoolTelemetry`] — tasks run, busy/idle ns, queue-depth
//! samples, per-task spans) for `results/metrics.json` and the Perfetto
//! pool track. The timing it collects is about the schedule, never an
//! input to any task, so result determinism is unaffected.

use crate::obs::{LogHistogram, PoolTelemetry, TaskSpan, WorkerTelemetry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant; // tdc-lint: allow(time-source) schedule telemetry only

/// Runs `work(index, &items[index])` for every item on `threads` worker
/// threads and returns the results in input order.
///
/// `threads` is clamped to `1..=items.len()`. Panics in `work` propagate
/// out of the enclosing thread scope (poisoning nothing the caller keeps).
pub fn run_tasks<T, R, F>(items: &[T], threads: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, total);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let result = work(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker scope joined with task unfinished")
        })
        .collect()
}

/// Like [`run_tasks`], additionally collecting scheduler telemetry:
/// per-worker task counts and busy/idle time, queue-depth samples at
/// each dequeue, and one span per task for trace export.
///
/// The results vector is computed exactly as [`run_tasks`] computes it;
/// only the telemetry side-channel differs. `idle_ns` is the pool wall
/// time minus the worker's busy time, which makes straggler tails
/// (ROADMAP's work-stealing motivation) directly visible.
pub fn run_tasks_telemetry<T, R, F>(
    items: &[T],
    threads: usize,
    work: F,
) -> (Vec<R>, PoolTelemetry)
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return (Vec::new(), PoolTelemetry::default());
    }
    let threads = threads.clamp(1, total);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();
    struct WorkerLog {
        tasks: u64,
        busy_ns: u64,
        spans: Vec<TaskSpan>,
        depth: LogHistogram,
    }
    let logs: Vec<Mutex<WorkerLog>> = (0..threads)
        .map(|_| {
            Mutex::new(WorkerLog {
                tasks: 0,
                busy_ns: 0,
                spans: Vec::new(),
                depth: LogHistogram::new(),
            })
        })
        .collect();
    let launch = Instant::now(); // tdc-lint: allow(time-source)

    std::thread::scope(|scope| {
        let (work, next, slots) = (&work, &next, &slots);
        for (worker, log) in logs.iter().enumerate() {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let start = Instant::now(); // tdc-lint: allow(time-source)
                let result = work(i, &items[i]);
                let dur_ns = start.elapsed().as_nanos() as u64;
                *slots[i].lock().expect("result slot poisoned") = Some(result);
                let mut log = log.lock().expect("telemetry log poisoned");
                log.tasks += 1;
                log.busy_ns += dur_ns;
                log.depth.record((total - 1 - i) as u64);
                log.spans.push(TaskSpan {
                    worker,
                    index: i,
                    start_ns: start.duration_since(launch).as_nanos() as u64,
                    dur_ns,
                });
            });
        }
    });

    let wall_ns = launch.elapsed().as_nanos() as u64;
    let mut telemetry = PoolTelemetry {
        wall_ns,
        ..PoolTelemetry::default()
    };
    for log in logs {
        let log = log.into_inner().expect("telemetry log poisoned");
        telemetry.workers.push(WorkerTelemetry {
            tasks: log.tasks,
            busy_ns: log.busy_ns,
            idle_ns: wall_ns.saturating_sub(log.busy_ns),
        });
        telemetry.queue_depth.merge(&log.depth);
        telemetry.spans.extend(log.spans);
    }
    telemetry.spans.sort_by_key(|s| (s.start_ns, s.index));
    let results = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker scope joined with task unfinished")
        })
        .collect();
    (results, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_tasks(&items, 7, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out.len(), 100);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u32> = (0..37).collect();
        let f = |_: usize, &x: &u32| x.wrapping_mul(2654435761);
        assert_eq!(run_tasks(&items, 1, f), run_tasks(&items, 16, f));
    }

    #[test]
    fn empty_input_and_oversubscription() {
        let none: Vec<u8> = Vec::new();
        assert!(run_tasks(&none, 4, |_, &x| x).is_empty());
        // More threads than items: clamped, still correct.
        let out = run_tasks(&[1u8, 2], 64, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn non_copy_results_move_out_cleanly() {
        let items = vec!["a", "bb", "ccc"];
        let out = run_tasks(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:bb", "2:ccc"]);
    }

    #[test]
    fn telemetry_variant_matches_plain_results() {
        let items: Vec<u64> = (0..50).collect();
        let f = |i: usize, &x: &u64| x.wrapping_mul(i as u64 + 3);
        let plain = run_tasks(&items, 4, f);
        let (traced, telemetry) = run_tasks_telemetry(&items, 4, f);
        assert_eq!(plain, traced);
        assert_eq!(telemetry.workers.len(), 4);
        let tasks: u64 = telemetry.workers.iter().map(|w| w.tasks).sum();
        assert_eq!(tasks, 50);
        assert_eq!(telemetry.spans.len(), 50);
        assert_eq!(telemetry.queue_depth.count(), 50);
        // Every input index executed exactly once.
        let mut seen: Vec<usize> = telemetry.spans.iter().map(|s| s.index).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..50).collect::<Vec<_>>());
        for w in &telemetry.workers {
            assert_eq!(
                w.busy_ns + w.idle_ns,
                telemetry.wall_ns.max(w.busy_ns),
                "busy + idle must cover the batch wall time"
            );
        }
    }

    #[test]
    fn telemetry_on_empty_input_is_empty() {
        let none: Vec<u8> = Vec::new();
        let (out, telemetry) = run_tasks_telemetry(&none, 4, |_, &x| x);
        assert!(out.is_empty());
        assert!(telemetry.workers.is_empty());
        assert_eq!(telemetry.queue_depth.count(), 0);
    }
}
