//! A std-only generic worker pool.
//!
//! [`run_tasks`] executes one closure call per input item across a fixed
//! number of OS threads (`std::thread::scope` + an atomic work index; no
//! external crates) and returns the results **in input order**. It is the
//! shared scheduler behind `tdc-harness`'s experiment batches and
//! `tdc-lint`'s parallel file scan.
//!
//! Scheduling order must be irrelevant to results: each call should be a
//! pure function of its item (and index), so outputs are bit-identical
//! whether the batch runs on one thread or sixteen. The pool itself does
//! no timing and no I/O; callers that want per-task wall-clock or progress
//! reporting do it inside the closure (see `tdc-harness::pool`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `work(index, &items[index])` for every item on `threads` worker
/// threads and returns the results in input order.
///
/// `threads` is clamped to `1..=items.len()`. Panics in `work` propagate
/// out of the enclosing thread scope (poisoning nothing the caller keeps).
pub fn run_tasks<T, R, F>(items: &[T], threads: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let total = items.len();
    if total == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, total);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..total).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let result = work(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker scope joined with task unfinished")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = run_tasks(&items, 7, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        assert_eq!(out.len(), 100);
        for (i, &r) in out.iter().enumerate() {
            assert_eq!(r, (i as u64) * (i as u64));
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u32> = (0..37).collect();
        let f = |_: usize, &x: &u32| x.wrapping_mul(2654435761);
        assert_eq!(run_tasks(&items, 1, f), run_tasks(&items, 16, f));
    }

    #[test]
    fn empty_input_and_oversubscription() {
        let none: Vec<u8> = Vec::new();
        assert!(run_tasks(&none, 4, |_, &x| x).is_empty());
        // More threads than items: clamped, still correct.
        let out = run_tasks(&[1u8, 2], 64, |_, &x| x + 1);
        assert_eq!(out, vec![2, 3]);
    }

    #[test]
    fn non_copy_results_move_out_cleanly() {
        let items = vec!["a", "bb", "ccc"];
        let out = run_tasks(&items, 2, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:bb", "2:ccc"]);
    }
}
