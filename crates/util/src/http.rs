//! Minimal HTTP/1.1 plumbing over std streams.
//!
//! `tdc serve` speaks plain HTTP/1.1 over `std::net` with the same
//! zero-external-dependency discipline as [`crate::json`]: a strict,
//! hand-rolled reader/writer pair instead of a framework. The subset is
//! deliberately small — one request per connection (`Connection:
//! close`), `Content-Length` bodies only (no chunked encoding, no
//! continuation lines), ASCII header names — which keeps the wire
//! bytes deterministic enough to pin request/response pairs as golden
//! files.
//!
//! One internal parser handles either side of the exchange (the start
//! line is kept verbatim), so the server ([`read_request`]) and the
//! load-generator client ([`read_response`]) share it.

use std::io::{self, BufRead, Write};

/// Upper bound on the start line plus headers (a defense against
/// unbounded reads from a misbehaving peer, not a protocol limit).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a declared `Content-Length` body.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method verb, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target, as sent (`/sweep`, `/figure/fig07`, ...).
    pub target: String,
    /// Header `(name, value)` pairs in wire order; names are
    /// lower-cased on parse, values are trimmed.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// One parsed or to-be-written HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (`200`, `429`, ...).
    pub status: u16,
    /// Extra header `(name, value)` pairs; `Content-Length` and
    /// `Connection: close` are appended by [`write_response`].
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A response carrying `body` with the given status and a
    /// `Content-Type` header.
    pub fn new(status: u16, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".to_string(), content_type.to_string())],
            body: body.into(),
        }
    }

    /// The header value for `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_of(&self.headers, name)
    }
}

impl Request {
    /// A request with a body and an explicit `Content-Type` header.
    pub fn new(method: &str, target: &str, body: impl Into<Vec<u8>>) -> Self {
        Self {
            method: method.to_string(),
            target: target.to_string(),
            headers: vec![("content-type".to_string(), "application/json".to_string())],
            body: body.into(),
        }
    }

    /// The header value for `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        header_of(&self.headers, name)
    }
}

fn header_of<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// The standard reason phrase for the status codes the serve wire
/// format uses (`"Unknown"` otherwise — the code still round-trips).
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One parsed message head: the verbatim start line plus headers.
struct Head {
    start_line: String,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

/// Reads one HTTP/1.1 message (start line, headers, `Content-Length`
/// body) from `stream`. `Err` carries a human-readable parse reason;
/// an immediate EOF reports `"connection closed before request"`.
fn read_message(stream: &mut impl BufRead) -> Result<Head, String> {
    let start_line = read_line(stream, MAX_HEAD_BYTES)?
        .ok_or_else(|| "connection closed before request".to_string())?;
    if start_line.is_empty() {
        return Err("empty start line".to_string());
    }
    let mut headers = Vec::new();
    let mut head_bytes = start_line.len();
    let mut content_length: usize = 0;
    loop {
        let line = read_line(stream, MAX_HEAD_BYTES)?
            .ok_or_else(|| "connection closed inside headers".to_string())?;
        head_bytes += line.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(format!("headers exceed {MAX_HEAD_BYTES} bytes"));
        }
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header line '{line}'"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value
                .parse::<usize>()
                .map_err(|_| format!("bad Content-Length '{value}'"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(format!("body of {content_length} bytes exceeds {MAX_BODY_BYTES}"));
            }
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| format!("short body read: {e}"))?;
    Ok(Head {
        start_line,
        headers,
        body,
    })
}

/// Reads one CRLF-terminated line (LF tolerated). `Ok(None)` on clean
/// EOF before any byte.
fn read_line(stream: &mut impl BufRead, cap: usize) -> Result<Option<String>, String> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err("connection closed mid-line".to_string());
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    let line = String::from_utf8(buf)
                        .map_err(|_| "non-UTF-8 header bytes".to_string())?;
                    return Ok(Some(line));
                }
                buf.push(byte[0]);
                if buf.len() > cap {
                    return Err(format!("line exceeds {cap} bytes"));
                }
            }
            Err(e) => return Err(format!("read error: {e}")),
        }
    }
}

/// Reads one HTTP request. `Err` carries the parse reason; callers
/// distinguish a clean pre-request EOF by its fixed message
/// ("connection closed before request").
pub fn read_request(stream: &mut impl BufRead) -> Result<Request, String> {
    let head = read_message(stream)?;
    let mut parts = head.start_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| "missing method".to_string())?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| "missing request target".to_string())?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => return Err(format!("unsupported protocol {other:?}")),
    }
    Ok(Request {
        method,
        target,
        headers: head.headers,
        body: head.body,
    })
}

/// Reads one HTTP response (the load-generator side).
pub fn read_response(stream: &mut impl BufRead) -> Result<Response, String> {
    let head = read_message(stream)?;
    let mut parts = head.start_line.split_ascii_whitespace();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        other => return Err(format!("unsupported protocol {other:?}")),
    }
    let status = parts
        .next()
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| "missing status code".to_string())?;
    Ok(Response {
        status,
        headers: head.headers,
        body: head.body,
    })
}

/// Writes `resp` as one `Connection: close` HTTP/1.1 message. The
/// output bytes are a pure function of the `Response` value (header
/// order preserved, `Content-Length` computed last), which is what
/// lets the serve tests pin responses as golden files.
pub fn write_response(stream: &mut impl Write, resp: &Response) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status));
    for (name, value) in &resp.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", resp.body.len()));
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

/// Writes `req` as one `Connection: close` HTTP/1.1 message
/// (deterministic bytes, same contract as [`write_response`]).
pub fn write_request(stream: &mut impl Write, req: &Request) -> io::Result<()> {
    let mut head = format!("{} {} HTTP/1.1\r\n", req.method, req.target);
    for (name, value) in &req.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", req.body.len()));
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&req.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip_request(req: &Request) -> Request {
        let mut bytes = Vec::new();
        write_request(&mut bytes, req).expect("write to vec");
        read_request(&mut Cursor::new(bytes)).expect("parse back")
    }

    #[test]
    fn request_round_trips_with_body() {
        let req = Request::new("POST", "/sweep", br#"{"k":1}"#.to_vec());
        let back = round_trip_request(&req);
        assert_eq!(back.method, "POST");
        assert_eq!(back.target, "/sweep");
        assert_eq!(back.body, br#"{"k":1}"#);
        assert_eq!(back.header("content-type"), Some("application/json"));
        assert_eq!(back.header("Content-Length"), Some("7"));
    }

    #[test]
    fn response_round_trips_and_reason_phrases() {
        let resp = Response::new(429, "application/json", b"{}".to_vec());
        let mut bytes = Vec::new();
        write_response(&mut bytes, &resp).expect("write to vec");
        let text = String::from_utf8(bytes.clone()).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"));
        let back = read_response(&mut Cursor::new(bytes)).expect("parse back");
        assert_eq!(back.status, 429);
        assert_eq!(back.body, b"{}");
    }

    #[test]
    fn clean_eof_is_distinguishable() {
        let err = read_request(&mut Cursor::new(Vec::<u8>::new())).unwrap_err();
        assert!(err.contains("closed before request"), "{err}");
    }

    #[test]
    fn malformed_heads_are_rejected() {
        let cases: [&[u8]; 3] = [
            b"GET /x\r\n\r\n",                          // no protocol
            b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n", // bad header
            b"GET /x HTTP/1.1\r\nContent-Length: zz\r\n\r\n", // bad length
        ];
        for case in cases {
            assert!(read_request(&mut Cursor::new(case.to_vec())).is_err());
        }
    }

    #[test]
    fn short_body_is_an_error_not_a_truncation() {
        let bytes = b"POST /s HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc".to_vec();
        let err = read_request(&mut Cursor::new(bytes)).unwrap_err();
        assert!(err.contains("short body"), "{err}");
    }

    #[test]
    fn oversized_declared_body_is_rejected() {
        let head = format!("POST /s HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = read_request(&mut Cursor::new(head.into_bytes())).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }
}
