//! The multicore system: trace-driven cores with private L1D/L2 caches
//! in front of a DRAM cache organization.
//!
//! Cores advance in global time order: each simulation step processes
//! one memory reference on the core with the smallest local clock, so
//! contention on the shared DRAM devices is interleaved realistically.

use crate::core_model::{CoreParams, CoreState};
use tdc_dram_cache::{Frame, L3System};
use tdc_sram_cache::{CacheGeometry, Replacement, SetAssocCache};
use tdc_trace::TraceSource;
use tdc_util::probe::{NoProbe, Phase, Probe, ProbeEvent};
use tdc_util::Cycle;

/// On-die cache latencies (paper Table 3).
const L1_HIT_CYCLES: Cycle = 2;
const L2_HIT_CYCLES: Cycle = 6;

/// Per-core hierarchy and counters.
struct CoreCtx {
    core: CoreState,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    trace: Box<dyn TraceSource>,
    refs_done: u64,
    l1_misses: u64,
    l2_misses: u64,
    tlb_penalty_sum: u64,
    // Snapshot at end of warmup.
    base_clock: Cycle,
    base_instrs: u64,
    base_tlb_penalty: u64,
    base_mem_stall: u64,
    base_l1_misses: u64,
    base_l2_misses: u64,
    base_refs: u64,
}

impl CoreCtx {
    fn new(params: CoreParams, trace: Box<dyn TraceSource>) -> Self {
        let l1 = CacheGeometry::new(32 * 1024, 64, 4).expect("Table 3 L1 geometry");
        let l2 = CacheGeometry::new(2 * 1024 * 1024, 64, 16).expect("Table 3 L2 geometry");
        Self {
            core: CoreState::new(params),
            l1d: SetAssocCache::new(l1, Replacement::Lru),
            l2: SetAssocCache::new(l2, Replacement::Lru),
            trace,
            refs_done: 0,
            l1_misses: 0,
            l2_misses: 0,
            tlb_penalty_sum: 0,
            base_clock: 0,
            base_instrs: 0,
            base_tlb_penalty: 0,
            base_mem_stall: 0,
            base_l1_misses: 0,
            base_l2_misses: 0,
            base_refs: 0,
        }
    }

    fn snapshot_baseline(&mut self) {
        self.base_clock = self.core.clock();
        self.base_instrs = self.core.instrs();
        self.base_tlb_penalty = self.tlb_penalty_sum;
        self.base_mem_stall = self.core.stall_cycles();
        self.base_l1_misses = self.l1_misses;
        self.base_l2_misses = self.l2_misses;
        self.base_refs = self.refs_done;
    }
}

/// Per-core measured results after a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreResult {
    /// Instructions retired during the measured phase.
    pub instrs: u64,
    /// Cycles elapsed during the measured phase.
    pub cycles: Cycle,
    /// Measured-phase IPC.
    pub ipc: f64,
    /// L1 misses (= L2 accesses) during the measured phase.
    pub l1_misses: u64,
    /// L2 misses during the measured phase.
    pub l2_misses: u64,
    /// Total TLB penalty cycles during the measured phase.
    pub tlb_penalty: u64,
    /// Cycles stalled on a full miss window during the measured phase.
    pub mem_stall: u64,
    /// References processed during the measured phase.
    pub refs: u64,
}

/// A complete simulated machine.
pub struct System<P: Probe = NoProbe> {
    l3: Box<dyn L3System>,
    cores: Vec<CoreCtx>,
    probe: P,
}

impl System {
    /// Builds a system from an L3 organization and one trace per core.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn new(l3: Box<dyn L3System>, traces: Vec<Box<dyn TraceSource>>) -> Self {
        Self::with_probe(l3, traces, NoProbe)
    }
}

impl<P: Probe> System<P> {
    /// Builds an instrumented system: core retire/stall epochs are
    /// reported into `probe` (the L3 organization carries its own probe
    /// handle, installed when it was built).
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    pub fn with_probe(
        l3: Box<dyn L3System>,
        traces: Vec<Box<dyn TraceSource>>,
        probe: P,
    ) -> Self {
        assert!(!traces.is_empty(), "need at least one core trace");
        let params = CoreParams::paper_default();
        Self {
            l3,
            cores: traces
                .into_iter()
                .map(|t| CoreCtx::new(params, t))
                .collect(),
            probe,
        }
    }

    /// The L3 organization under test.
    pub fn l3(&self) -> &dyn L3System {
        &*self.l3
    }

    /// Number of cores with traces.
    pub fn active_cores(&self) -> usize {
        self.cores.len()
    }

    /// The system-level probe, for report-assembly phase spans.
    pub(crate) fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Processes one reference on core `i`.
    fn step(&mut self, i: usize) {
        let r = self.cores[i].trace.next_ref();
        let ctx = &mut self.cores[i];
        ctx.core.retire(r.gap_instrs as u64 + 1);
        ctx.refs_done += 1;
        let now = ctx.core.clock();
        if self.probe.enabled() {
            self.probe.emit(
                now,
                ProbeEvent::Retire {
                    core: i as u8,
                    instrs: r.gap_instrs as u64 + 1,
                },
            );
        }

        // Translation (cTLB or conventional TLB).
        if self.probe.prof_enabled() {
            self.probe.phase_begin(Phase::Translation);
        }
        let tr = self.l3.translate(now, i, r.vaddr.page(), r.is_write);
        if self.probe.prof_enabled() {
            self.probe.phase_end(Phase::Translation);
        }
        let ctx = &mut self.cores[i];
        if tr.penalty > 0 {
            ctx.core.tlb_stall(tr.penalty);
            ctx.tlb_penalty_sum += tr.penalty;
            if self.probe.enabled() {
                self.probe.emit(
                    now,
                    ProbeEvent::TlbStall {
                        core: i as u8,
                        cycles: tr.penalty,
                    },
                );
            }
        }
        let now = ctx.core.clock();

        // On-die lookup with the translated (frame) address.
        let block = r.vaddr.block_in_page();
        let line_addr = tr.frame.line_addr(block);
        let l1 = ctx.l1d.access(line_addr, r.is_write);
        if l1.hit {
            return; // absorbed by the 2-cycle L1 pipeline
        }
        ctx.l1_misses += 1;
        // Fill L1; a dirty victim is written into L2.
        let mut l2_dirty_victim = None;
        if let Some(v) = l1.evicted {
            if v.dirty {
                let wb = ctx.l2.access_line(v.line, true);
                if let Some(v2) = wb.evicted {
                    if v2.dirty {
                        l2_dirty_victim = Some(v2.line);
                    }
                }
            }
        }
        let l2 = ctx.l2.access(line_addr, r.is_write);
        if let Some(v2) = l2.evicted {
            if v2.dirty {
                l2_dirty_victim = Some(v2.line);
            }
        }
        if let Some(vline) = l2_dirty_victim {
            let (frame, vblock) = Frame::from_line_addr(vline << 6);
            if self.probe.prof_enabled() {
                self.probe.phase_begin(Phase::CacheAccess);
            }
            self.l3.writeback(now, i, frame, false, vblock);
            if self.probe.prof_enabled() {
                self.probe.phase_end(Phase::CacheAccess);
            }
        }
        let ctx = &mut self.cores[i];
        if l2.hit {
            // Modeled as fully overlapped by the out-of-order window
            // apart from its pipeline occupancy.
            let _ = L1_HIT_CYCLES + L2_HIT_CYCLES;
            return;
        }
        ctx.l2_misses += 1;
        // The miss can only be issued to the memory system once an MSHR
        // (miss-window slot) is available; issuing first and queueing
        // later would double-count contention.
        let stall_before = ctx.core.stall_cycles();
        let pre_wait = ctx.core.clock();
        ctx.core.wait_for_miss_slot();
        let stalled = ctx.core.stall_cycles() - stall_before;
        if stalled > 0 && self.probe.enabled() {
            self.probe.emit(
                pre_wait,
                ProbeEvent::MemStall {
                    core: i as u8,
                    cycles: stalled,
                },
            );
        }
        let now = ctx.core.clock();
        if self.probe.prof_enabled() {
            self.probe.phase_begin(Phase::CacheAccess);
        }
        let m = self.l3.access(now, i, tr.frame, tr.nc, block);
        if self.probe.prof_enabled() {
            self.probe.phase_end(Phase::CacheAccess);
        }
        self.cores[i]
            .core
            .record_miss_completion(now + m.latency + L2_HIT_CYCLES);
    }

    /// Runs every core for `warmup + measured` references; statistics
    /// cover only the measured phase. Cores are interleaved in global
    /// time order.
    pub fn run(&mut self, warmup: u64, measured: u64) -> Vec<CoreResult> {
        let total = warmup + measured;
        // One Bookkeeping span covers the whole run loop: the nested
        // Translation/CacheAccess (and deeper) spans subtract their own
        // time, so whatever remains — trace generation, core clocks,
        // the min-clock scan — is attributed to bookkeeping.
        if self.probe.prof_enabled() {
            self.probe.phase_begin(Phase::Bookkeeping);
        }
        // Warmup phase.
        self.run_until(warmup);
        self.l3.reset_stats();
        for c in &mut self.cores {
            c.snapshot_baseline();
        }
        // Measured phase.
        self.run_until(total);
        if self.probe.prof_enabled() {
            self.probe.phase_end(Phase::Bookkeeping);
        }
        self.cores
            .iter()
            .map(|c| {
                let cycles = c.core.clock() - c.base_clock;
                let instrs = c.core.instrs() - c.base_instrs;
                CoreResult {
                    instrs,
                    cycles,
                    ipc: if cycles == 0 {
                        0.0
                    } else {
                        instrs as f64 / cycles as f64
                    },
                    l1_misses: c.l1_misses - c.base_l1_misses,
                    l2_misses: c.l2_misses - c.base_l2_misses,
                    tlb_penalty: c.tlb_penalty_sum - c.base_tlb_penalty,
                    mem_stall: c.core.stall_cycles() - c.base_mem_stall,
                    refs: c.refs_done - c.base_refs,
                }
            })
            .collect()
    }

    fn run_until(&mut self, per_core_refs: u64) {
        loop {
            // Advance the unfinished core with the smallest local clock.
            let next = self
                .cores
                .iter()
                .enumerate()
                .filter(|(_, c)| c.refs_done < per_core_refs)
                .min_by_key(|(_, c)| c.core.clock())
                .map(|(i, _)| i);
            match next {
                Some(i) => self.step(i),
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdc_dram_cache::{Ideal, NoL3, SystemParams, TaglessCache, VictimPolicy};
    use tdc_trace::{MemRef, ReplaySource};
    use tdc_util::VAddr;

    fn looping_trace(pages: u64, gap: u32) -> Box<dyn TraceSource> {
        let refs: Vec<MemRef> = (0..pages * 4)
            .map(|i| {
                MemRef::read(VAddr((i % pages) * 4096 + (i / pages) * 64)).with_gap(gap)
            })
            .collect();
        Box::new(ReplaySource::new(refs).expect("non-empty"))
    }

    fn params() -> SystemParams {
        let mut p = SystemParams::with_cache_capacity(64 * 4096);
        p.cores = 1;
        p.core_asid = vec![0];
        p
    }

    #[test]
    fn system_runs_and_reports() {
        let p = params();
        let mut sys = System::new(Box::new(NoL3::new(&p)), vec![looping_trace(8, 10)]);
        let res = sys.run(100, 1000);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0].refs, 1000);
        assert!(res[0].ipc > 0.0);
        assert!(res[0].instrs >= 1000);
    }

    #[test]
    fn small_working_set_mostly_hits_on_die() {
        // 8 pages revisited with 64B strides: after warmup nearly
        // everything hits L1/L2 and very few L2 misses remain.
        let p = params();
        let mut sys = System::new(Box::new(NoL3::new(&p)), vec![looping_trace(8, 10)]);
        let res = sys.run(3000, 3000);
        assert!(
            res[0].l2_misses < 100,
            "unexpected L2 misses: {}",
            res[0].l2_misses
        );
    }

    #[test]
    fn ideal_beats_no_l3_on_memory_bound_trace() {
        // A large page-stride trace that defeats the on-die caches.
        let make_trace = || -> Box<dyn TraceSource> {
            let refs: Vec<MemRef> = (0..4096u64)
                .map(|i| MemRef::read(VAddr((i * 7 % 2048) * 4096)).with_gap(5))
                .collect();
            Box::new(ReplaySource::new(refs).expect("non-empty"))
        };
        let p = params();
        let mut base = System::new(Box::new(NoL3::new(&p)), vec![make_trace()]);
        let mut ideal = System::new(Box::new(Ideal::new(&p)), vec![make_trace()]);
        let rb = base.run(4096, 8192)[0];
        let ri = ideal.run(4096, 8192)[0];
        assert!(
            ri.ipc > rb.ipc * 1.05,
            "ideal {} vs no-l3 {}",
            ri.ipc,
            rb.ipc
        );
    }

    #[test]
    fn tagless_guarantees_in_package_after_warmup() {
        let p = params();
        let l3 = TaglessCache::new(&p, VictimPolicy::Fifo);
        let mut sys = System::new(Box::new(l3), vec![looping_trace(16, 10)]);
        sys.run(2000, 2000);
        let s = sys.l3().stats();
        // All measured demand reads come from in-package DRAM: the
        // 16-page working set sits inside the TLB reach.
        assert_eq!(s.in_package_reads, s.demand_reads);
    }

    #[test]
    fn multicore_traces_interleave() {
        let mut p = params();
        p.cores = 2;
        p.core_asid = vec![0, 1];
        let mut sys = System::new(
            Box::new(NoL3::new(&p)),
            vec![looping_trace(64, 5), looping_trace(64, 50)],
        );
        let res = sys.run(500, 2000);
        assert_eq!(res.len(), 2);
        // The low-gap core is more memory-bound; both make progress.
        assert_eq!(res[0].refs, 2000);
        assert_eq!(res[1].refs, 2000);
        assert!(res[1].ipc > 0.0 && res[0].ipc > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_trace_list_rejected() {
        let p = params();
        let _ = System::new(Box::new(NoL3::new(&p)), vec![]);
    }
}
