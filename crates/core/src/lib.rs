//! System assembly and experiment infrastructure for the tagless DRAM
//! cache study.
//!
//! This crate plays the role McSimA+ plays in the paper: it puts cores,
//! on-die caches, TLBs, and a DRAM cache organization together and runs
//! workload traces through them (substitution rationale: DESIGN.md §2;
//! the experiment-to-figure mapping: DESIGN.md §5).
//!
//! * [`core_model`] — the 4-wide core timing model with bounded
//!   memory-level parallelism.
//! * [`system`] — the multicore [`System`]: per-core L1D/L2 caches in
//!   front of any [`tdc_dram_cache::L3System`], driven by trace sources
//!   in global time order.
//! * [`energy`] — McPAT-substitute energy accounting and EDP.
//! * [`amat`] — the paper's analytic AMAT model (Equations 1–5).
//! * [`experiment`] — one-call runners for every workload class the
//!   paper evaluates (single-programmed SPEC, Table 5 mixes, PARSEC) on
//!   every organization, producing [`RunReport`]s the bench harnesses
//!   and examples print.
//!
//! # Examples
//!
//! ```no_run
//! use tdc_core::experiment::{run_single, OrgKind, RunConfig};
//!
//! let cfg = RunConfig::quick(1);
//! let base = run_single("omnetpp", OrgKind::NoL3, &cfg).expect("known benchmark");
//! let tagless = run_single("omnetpp", OrgKind::Tagless, &cfg).expect("known benchmark");
//! println!("normalized IPC: {:.3}", tagless.ipc_total() / base.ipc_total());
//! ```

pub mod amat;
pub mod core_model;
pub mod energy;
pub mod experiment;
pub mod metrics;
pub mod system;

pub use amat::{AmatInputs, AmatModel};
pub use core_model::{CoreParams, CoreState};
pub use energy::{EnergyModel, EnergyReport};
pub use experiment::{
    run_job_probed, run_mix, run_parsec, run_single, Job, OrgKind, RunConfig, Workload,
};
pub use metrics::RunReport;
pub use system::{CoreResult, System};
// Re-exported so downstream crates can name every public field of
// `RunReport` without depending on the component crates directly.
pub use tdc_dram::DramStats;
pub use tdc_dram_cache::L3Stats;
