//! One-call experiment runners for every workload class in the paper.

use crate::energy::EnergyModel;
use crate::metrics::RunReport;
use crate::system::System;
use tdc_dram_cache::{
    BankInterleave, Ideal, L3System, NoL3, SramTagCache, SystemParams, TaglessCache, VictimPolicy,
};
use tdc_sram_cache::TagArrayModel;
use tdc_util::probe::{NoProbe, Phase, Probe};
use tdc_util::PAGE_SIZE;
use tdc_trace::{page_access_counts, profiles, ParsecTraces, SyntheticWorkload, TraceSource, WorkloadProfile};

/// Global capacity/footprint scale of the experiments.
///
/// The paper's testbed simulates 100M-instruction Simpoint slices
/// against a 1GB cache that was warmed over the preceding execution.
/// Running a freshly-built simulator to the same steady state at full
/// scale would require billions of references per data point, so every
/// experiment divides *all* capacities (DRAM cache, off-package memory)
/// and *all* workload footprints by this factor. Ratios — footprint vs.
/// cache size, cache vs. off-package capacity (the BI stride), reuse
/// distances vs. capacity — are preserved, which is what determines the
/// shape of every figure. The SRAM tag-array latency (Table 6) is taken
/// from the *nominal* capacity so the tag-overhead comparison remains at
/// paper scale. Documented in DESIGN.md §2.
pub const CAPACITY_SCALE: u64 = 8;

/// The organizations evaluated in the paper (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrgKind {
    /// Conventional memory system, no DRAM cache (baseline).
    NoL3,
    /// Heterogeneity-oblivious bank interleaving.
    BankInterleave,
    /// 16-way SRAM-tag page cache.
    SramTag,
    /// The tagless cTLB cache, FIFO replacement (default).
    Tagless,
    /// The tagless cache with LRU replacement (Fig. 11).
    TaglessLru,
    /// All data in-package (upper bound).
    Ideal,
}

impl OrgKind {
    /// The comparison set of Figs. 7/9/12 (everything but the LRU
    /// variant), baseline first.
    pub const MAIN: [OrgKind; 5] = [
        OrgKind::NoL3,
        OrgKind::BankInterleave,
        OrgKind::SramTag,
        OrgKind::Tagless,
        OrgKind::Ideal,
    ];

    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            OrgKind::NoL3 => "No L3",
            OrgKind::BankInterleave => "BI",
            OrgKind::SramTag => "SRAM",
            OrgKind::Tagless => "cTLB",
            OrgKind::TaglessLru => "cTLB-LRU",
            OrgKind::Ideal => "Ideal",
        }
    }

    /// Builds the organization for the given system parameters.
    pub fn build(&self, params: &SystemParams) -> Box<dyn L3System> {
        match self {
            OrgKind::NoL3 => Box::new(NoL3::new(params)),
            OrgKind::BankInterleave => Box::new(BankInterleave::new(params)),
            OrgKind::SramTag => Box::new(SramTagCache::new(params)),
            OrgKind::Tagless => Box::new(TaglessCache::new(params, VictimPolicy::Fifo)),
            OrgKind::TaglessLru => Box::new(TaglessCache::new(params, VictimPolicy::Lru)),
            OrgKind::Ideal => Box::new(Ideal::new(params)),
        }
    }
}

/// Run-length and configuration knobs shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Master seed; every generator stream derives from it.
    pub seed: u64,
    /// DRAM cache capacity in bytes (1GB default; Fig. 10 sweeps it).
    pub cache_bytes: u64,
    /// Per-core warmup references (excluded from statistics).
    pub warmup_refs: u64,
    /// Per-core measured references.
    pub measured_refs: u64,
}

impl RunConfig {
    /// Fast smoke configuration (CI-friendly).
    pub fn quick(seed: u64) -> Self {
        Self {
            seed,
            cache_bytes: 1 << 30,
            warmup_refs: 50_000,
            measured_refs: 150_000,
        }
    }

    /// Full configuration used to regenerate the paper's figures.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            cache_bytes: 1 << 30,
            warmup_refs: 800_000,
            measured_refs: 1_600_000,
        }
    }

    /// `full()` with its run lengths multiplied by `factor` (clamped to
    /// sane minimums). `factor <= 0` is ignored.
    pub fn scaled(seed: u64, factor: f64) -> Self {
        let mut cfg = Self::full(seed);
        if factor > 0.0 {
            cfg.warmup_refs = ((cfg.warmup_refs as f64 * factor) as u64).max(1_000);
            cfg.measured_refs = ((cfg.measured_refs as f64 * factor) as u64).max(2_000);
        }
        cfg
    }

    /// `full()` scaled by the `TDC_SCALE` environment variable (a float;
    /// e.g. `TDC_SCALE=0.1` for a fast pass) — the knob the bench
    /// harnesses use.
    pub fn from_env(seed: u64) -> Self {
        match std::env::var("TDC_SCALE").ok().and_then(|s| s.parse::<f64>().ok()) {
            Some(f) => Self::scaled(seed, f),
            None => Self::full(seed),
        }
    }

    /// The same configuration with a different cache size.
    pub fn with_cache_bytes(mut self, bytes: u64) -> Self {
        self.cache_bytes = bytes;
        self
    }

    fn params(&self, cores: usize, core_asid: Vec<u32>) -> SystemParams {
        let actual = (self.cache_bytes / CAPACITY_SCALE).max(64 * PAGE_SIZE);
        let mut p = SystemParams::with_cache_capacity(actual);
        p.tag_nominal_bytes = self.cache_bytes;
        p.off_pkg.capacity_bytes /= CAPACITY_SCALE;
        p.cores = cores;
        p.core_asid = core_asid;
        p
    }
}

/// A profile with its footprint scaled by [`CAPACITY_SCALE`].
fn scaled(profile: &WorkloadProfile) -> WorkloadProfile {
    let mut p = profile.clone();
    p.footprint_pages = (p.footprint_pages / CAPACITY_SCALE).max(64);
    p
}

fn finish(
    org: &dyn L3System,
    name: &str,
    workload: &str,
    cores: Vec<crate::system::CoreResult>,
    cache_bytes: u64,
    is_sram: bool,
) -> RunReport {
    let l1_accesses: u64 = cores.iter().map(|c| c.refs).sum();
    let l2_accesses: u64 = cores.iter().map(|c| c.l1_misses).sum();
    let makespan = cores.iter().map(|c| c.cycles).max().unwrap_or(0);
    let leak = if is_sram {
        TagArrayModel::new(cache_bytes).leakage_mw()
    } else {
        0.0
    };
    let energy = EnergyModel::paper_default().report(
        cores.len(),
        makespan,
        l1_accesses,
        l2_accesses,
        org.energy_pj(),
        leak,
    );
    RunReport {
        org: name.to_string(),
        workload: workload.to_string(),
        cores,
        l3: org.stats().clone(),
        in_pkg: org.in_pkg_stats().copied(),
        off_pkg: *org.off_pkg_stats(),
        energy,
    }
}

fn run_system<P: Probe>(
    mut sys: System<P>,
    workload: &str,
    cfg: &RunConfig,
    is_sram: bool,
) -> RunReport {
    let cores = sys.run(cfg.warmup_refs, cfg.measured_refs);
    // Report assembly is bookkeeping time too.
    if sys.probe_mut().prof_enabled() {
        sys.probe_mut().phase_begin(Phase::Bookkeeping);
    }
    let name = sys.l3().name().to_string();
    let report = finish(sys.l3(), &name, workload, cores, cfg.cache_bytes, is_sram);
    if sys.probe_mut().prof_enabled() {
        sys.probe_mut().phase_end(Phase::Bookkeeping);
    }
    report
}

/// Builds `org` with `probe` installed where the organization supports
/// instrumentation (the tagless variants); the other organizations are
/// built uninstrumented — their DRAM traffic is not probed, but the
/// core-side events still flow through the [`System`]'s own probe.
fn build_probed<P: Probe + Clone + 'static>(
    org: OrgKind,
    params: &SystemParams,
    probe: P,
) -> Box<dyn L3System> {
    match org {
        OrgKind::Tagless => Box::new(TaglessCache::with_probe(
            params,
            VictimPolicy::Fifo,
            probe,
        )),
        OrgKind::TaglessLru => Box::new(TaglessCache::with_probe(
            params,
            VictimPolicy::Lru,
            probe,
        )),
        other => other.build(params),
    }
}

fn run_single_with<P: Probe + Clone + 'static>(
    bench: &str,
    org: OrgKind,
    cfg: &RunConfig,
    mut probe: P,
) -> Option<RunReport> {
    if probe.prof_enabled() {
        probe.phase_begin(Phase::Bookkeeping);
    }
    let profile = scaled(profiles::spec(bench)?);
    let params = cfg.params(1, vec![0]);
    let trace: Box<dyn TraceSource> =
        Box::new(SyntheticWorkload::new(profile.clone(), cfg.seed, 0));
    let sys = System::with_probe(
        build_probed(org, &params, probe.clone()),
        vec![trace],
        probe.clone(),
    );
    if probe.prof_enabled() {
        probe.phase_end(Phase::Bookkeeping);
    }
    Some(run_system(sys, profile.name, cfg, org == OrgKind::SramTag))
}

/// Runs one single-programmed SPEC benchmark on one core (Figs. 7/8).
///
/// Returns `None` for an unknown benchmark name.
pub fn run_single(bench: &str, org: OrgKind, cfg: &RunConfig) -> Option<RunReport> {
    run_single_with(bench, org, cfg, NoProbe)
}

fn run_mix_with<P: Probe + Clone + 'static>(
    mix_name: &str,
    org: OrgKind,
    cfg: &RunConfig,
    mut probe: P,
) -> Option<RunReport> {
    if probe.prof_enabled() {
        probe.phase_begin(Phase::Bookkeeping);
    }
    let four = profiles::mix(mix_name)?;
    let params = cfg.params(4, vec![0, 1, 2, 3]);
    let traces: Vec<Box<dyn TraceSource>> = four
        .iter()
        .enumerate()
        .map(|(i, p)| -> Box<dyn TraceSource> {
            Box::new(SyntheticWorkload::new(
                scaled(p),
                cfg.seed ^ ((i as u64 + 1) << 48),
                0,
            ))
        })
        .collect();
    let sys = System::with_probe(
        build_probed(org, &params, probe.clone()),
        traces,
        probe.clone(),
    );
    if probe.prof_enabled() {
        probe.phase_end(Phase::Bookkeeping);
    }
    Some(run_system(
        sys,
        &mix_name.to_uppercase(),
        cfg,
        org == OrgKind::SramTag,
    ))
}

/// Runs one Table 5 multi-programmed mix on four cores with private
/// address spaces (Figs. 9/10/11).
///
/// Returns `None` for an unknown mix name.
pub fn run_mix(mix_name: &str, org: OrgKind, cfg: &RunConfig) -> Option<RunReport> {
    run_mix_with(mix_name, org, cfg, NoProbe)
}

fn run_parsec_with<P: Probe + Clone + 'static>(
    bench: &str,
    org: OrgKind,
    cfg: &RunConfig,
    mut probe: P,
) -> Option<RunReport> {
    if probe.prof_enabled() {
        probe.phase_begin(Phase::Bookkeeping);
    }
    let parsec = ParsecTraces::with_profile(scaled(profiles::parsec(bench)?), cfg.seed);
    let params = cfg.params(4, vec![0; 4]);
    let traces: Vec<Box<dyn TraceSource>> = (0..parsec.threads())
        .map(|t| -> Box<dyn TraceSource> { Box::new(parsec.thread(t)) })
        .collect();
    let sys = System::with_probe(
        build_probed(org, &params, probe.clone()),
        traces,
        probe.clone(),
    );
    if probe.prof_enabled() {
        probe.phase_end(Phase::Bookkeeping);
    }
    Some(run_system(
        sys,
        parsec.profile().name,
        cfg,
        org == OrgKind::SramTag,
    ))
}

/// Runs one PARSEC benchmark with four threads sharing an address space
/// (Fig. 12).
///
/// Returns `None` for an unknown benchmark name.
pub fn run_parsec(bench: &str, org: OrgKind, cfg: &RunConfig) -> Option<RunReport> {
    run_parsec_with(bench, org, cfg, NoProbe)
}

fn run_single_tagless_nc_with<P: Probe + Clone + 'static>(
    bench: &str,
    cfg: &RunConfig,
    threshold: u64,
    mut probe: P,
) -> Option<RunReport> {
    if probe.prof_enabled() {
        probe.phase_begin(Phase::Bookkeeping);
    }
    let profile = scaled(profiles::spec(bench)?);
    let params = cfg.params(1, vec![0]);
    let mut l3 = TaglessCache::with_probe(&params, VictimPolicy::Fifo, probe.clone());

    // Offline profiling pass over the exact trace the run will see.
    let profiling = SyntheticWorkload::new(profile.clone(), cfg.seed, 0);
    let counts = page_access_counts(profiling, cfg.warmup_refs + cfg.measured_refs);
    let mut flagged = 0u64;
    for (vpn, n) in &counts {
        if *n < threshold {
            l3.set_non_cacheable(0, *vpn);
            flagged += 1;
        }
    }
    let _ = flagged;

    let trace: Box<dyn TraceSource> =
        Box::new(SyntheticWorkload::new(profile.clone(), cfg.seed, 0));
    let sys = System::with_probe(Box::new(l3), vec![trace], probe.clone());
    if probe.prof_enabled() {
        probe.phase_end(Phase::Bookkeeping);
    }
    let mut report = run_system(sys, profile.name, cfg, false);
    report.org = "cTLB+NC".to_string();
    Some(report)
}

/// Runs a single-programmed benchmark on the tagless cache with the
/// §5.4 non-cacheable optimization: an offline profiling pass marks
/// every page with fewer than `threshold` accesses as non-cacheable.
///
/// Returns `None` for an unknown benchmark name.
pub fn run_single_tagless_nc(bench: &str, cfg: &RunConfig, threshold: u64) -> Option<RunReport> {
    run_single_tagless_nc_with(bench, cfg, threshold, NoProbe)
}

/// Runs one single-programmed benchmark on a custom-built organization
/// (ablation studies: α sweeps, TLB-reach sweeps, GIPT-cost knobs,
/// online fill filters). The builder receives the standard parameters
/// for this configuration and may adjust them.
///
/// Returns `None` for an unknown benchmark name.
pub fn run_single_custom(
    bench: &str,
    cfg: &RunConfig,
    build: impl FnOnce(SystemParams) -> Box<dyn L3System>,
) -> Option<RunReport> {
    let profile = scaled(profiles::spec(bench)?);
    let params = cfg.params(1, vec![0]);
    let l3 = build(params);
    let trace: Box<dyn TraceSource> =
        Box::new(SyntheticWorkload::new(profile.clone(), cfg.seed, 0));
    let sys = System::new(l3, vec![trace]);
    Some(run_system(sys, profile.name, cfg, false))
}

/// The workload half of a simulation cell: which trace generator to
/// drive and how (Figs. 7–13 each enumerate a set of these).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Workload {
    /// A single-programmed SPEC benchmark on one core.
    Spec(String),
    /// A Table 5 multi-programmed four-core mix.
    Mix(String),
    /// A PARSEC benchmark, four threads sharing an address space.
    Parsec(String),
}

impl Workload {
    /// The workload's display name.
    pub fn name(&self) -> &str {
        match self {
            Workload::Spec(n) | Workload::Mix(n) | Workload::Parsec(n) => n,
        }
    }
}

/// One fully specified simulation cell: `(workload, organization,
/// configuration)`. Jobs are **cache-keyable** — [`Job::cache_key`] is
/// injective over everything that influences the simulation outcome —
/// and **deterministic**: a job's result depends only on the job itself
/// (every RNG stream derives from `cfg.seed`), never on when or where
/// it executes. The experiment harness (`tdc-harness`) exploits both to
/// run cells in parallel and share results across figures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// The trace generator to drive.
    pub workload: Workload,
    /// The memory-system organization to simulate.
    pub org: OrgKind,
    /// `Some(threshold)`: run the §5.4 non-cacheable variant instead
    /// (tagless with offline NC profiling; `workload` must be `Spec`).
    pub nc_threshold: Option<u64>,
    /// Run-length and capacity knobs (includes the master seed).
    pub cfg: RunConfig,
}

impl Job {
    /// A plain (workload, org) cell under `cfg`.
    pub fn new(workload: Workload, org: OrgKind, cfg: RunConfig) -> Self {
        Self {
            workload,
            org,
            nc_threshold: None,
            cfg,
        }
    }

    /// The §5.4 non-cacheable study cell on a SPEC benchmark.
    pub fn spec_nc(bench: &str, threshold: u64, cfg: RunConfig) -> Self {
        Self {
            workload: Workload::Spec(bench.to_string()),
            org: OrgKind::Tagless,
            nc_threshold: Some(threshold),
            cfg,
        }
    }

    /// A stable, injective key over every input that determines this
    /// job's result. Two jobs with equal keys produce bit-identical
    /// [`RunReport`]s.
    pub fn cache_key(&self) -> String {
        let class = match &self.workload {
            Workload::Spec(_) => "spec",
            Workload::Mix(_) => "mix",
            Workload::Parsec(_) => "parsec",
        };
        let nc = match self.nc_threshold {
            Some(t) => format!("|nc={t}"),
            None => String::new(),
        };
        format!(
            "{class}:{}|org={:?}{nc}|seed={}|cache={}|warm={}|meas={}",
            self.workload.name(),
            self.org,
            self.cfg.seed,
            self.cfg.cache_bytes,
            self.cfg.warmup_refs,
            self.cfg.measured_refs
        )
    }

    /// A short human-readable label for progress reporting.
    pub fn label(&self) -> String {
        let suffix = match self.nc_threshold {
            Some(t) => format!("+NC{t}"),
            None => String::new(),
        };
        format!(
            "{}/{}{} @{}MB",
            self.workload.name(),
            self.org.label(),
            suffix,
            self.cfg.cache_bytes >> 20
        )
    }

    /// Runs the cell. `Err` names the unknown workload.
    pub fn execute(&self) -> Result<RunReport, String> {
        run_job_probed(self, NoProbe)
    }
}

/// Runs a cell with `probe` installed through the whole stack: core
/// retire/stall epochs, cTLB levels, the tagless miss handler, and both
/// DRAM devices all report cycle-stamped events into clones of it.
///
/// Non-tagless organizations only produce the core-side events.
/// `Err` names the unknown workload.
pub fn run_job_probed<P: Probe + Clone + 'static>(
    job: &Job,
    probe: P,
) -> Result<RunReport, String> {
    let missing = || format!("unknown workload {:?}", job.workload);
    match (&job.workload, job.nc_threshold) {
        (Workload::Spec(b), Some(t)) => {
            run_single_tagless_nc_with(b, &job.cfg, t, probe).ok_or_else(missing)
        }
        (Workload::Spec(b), None) => {
            run_single_with(b, job.org, &job.cfg, probe).ok_or_else(missing)
        }
        (Workload::Mix(m), None) => run_mix_with(m, job.org, &job.cfg, probe).ok_or_else(missing),
        (Workload::Parsec(b), None) => {
            run_parsec_with(b, job.org, &job.cfg, probe).ok_or_else(missing)
        }
        (w, Some(_)) => Err(format!("non-cacheable study needs a Spec workload, got {w:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RunConfig {
        RunConfig {
            seed: 7,
            cache_bytes: 64 << 20,
            warmup_refs: 2_000,
            measured_refs: 6_000,
        }
    }

    #[test]
    fn unknown_names_return_none() {
        let cfg = tiny();
        assert!(run_single("nosuch", OrgKind::NoL3, &cfg).is_none());
        assert!(run_mix("MIX99", OrgKind::NoL3, &cfg).is_none());
        assert!(run_parsec("raytrace", OrgKind::NoL3, &cfg).is_none());
    }

    #[test]
    fn single_runs_all_orgs() {
        let cfg = tiny();
        for org in OrgKind::MAIN {
            let r = run_single("omnetpp", org, &cfg).expect("known benchmark");
            assert_eq!(r.org, org.build(&cfg.params(1, vec![0])).name());
            assert!(r.ipc_total() > 0.0, "{} produced zero IPC", r.org);
            assert!(r.energy.total_j > 0.0);
        }
    }

    #[test]
    fn mix_runs_four_cores() {
        let cfg = tiny();
        let r = run_mix("MIX1", OrgKind::Tagless, &cfg).expect("known mix");
        assert_eq!(r.cores.len(), 4);
        assert_eq!(r.workload, "MIX1");
    }

    #[test]
    fn parsec_runs_shared_space() {
        let cfg = tiny();
        let r = run_parsec("streamcluster", OrgKind::Tagless, &cfg).expect("known benchmark");
        assert_eq!(r.cores.len(), 4);
    }

    #[test]
    fn nc_study_runs() {
        let cfg = tiny();
        let r = run_single_tagless_nc("GemsFDTD", &cfg, 32).expect("known benchmark");
        assert_eq!(r.org, "cTLB+NC");
        // Some accesses bypass the cache.
        assert!(r.l3.case_hit_miss > 0 || r.l3.demand_reads > 0);
    }

    #[test]
    fn custom_builder_is_honored() {
        let cfg = tiny();
        let r = run_single_custom("milc", &cfg, |mut p| {
            p.alpha = 8;
            Box::new(TaglessCache::new(&p, VictimPolicy::Lru))
        })
        .expect("known benchmark");
        assert_eq!(r.org, "cTLB-LRU");
    }

    #[test]
    fn seeds_are_reproducible() {
        let cfg = tiny();
        let a = run_single("milc", OrgKind::Tagless, &cfg).unwrap();
        let b = run_single("milc", OrgKind::Tagless, &cfg).unwrap();
        assert_eq!(a.ipc_total(), b.ipc_total());
        assert_eq!(a.l3.demand_reads, b.l3.demand_reads);
    }

    #[test]
    fn job_executes_like_direct_runner() {
        let cfg = tiny();
        let direct = run_single("milc", OrgKind::Tagless, &cfg).unwrap();
        let job = Job::new(Workload::Spec("milc".into()), OrgKind::Tagless, cfg);
        let via_job = job.execute().unwrap();
        assert_eq!(direct.ipc_total(), via_job.ipc_total());
        assert_eq!(direct.l3.demand_reads, via_job.l3.demand_reads);
    }

    #[test]
    fn cache_keys_separate_distinct_cells() {
        let cfg = tiny();
        let a = Job::new(Workload::Spec("milc".into()), OrgKind::Tagless, cfg);
        let b = Job::new(Workload::Spec("milc".into()), OrgKind::SramTag, cfg);
        let c = Job::new(Workload::Mix("milc".into()), OrgKind::Tagless, cfg);
        let d = Job::new(
            Workload::Spec("milc".into()),
            OrgKind::Tagless,
            cfg.with_cache_bytes(1 << 28),
        );
        let e = Job::spec_nc("milc", 32, cfg);
        let keys = [a.cache_key(), b.cache_key(), c.cache_key(), d.cache_key(), e.cache_key()];
        for i in 0..keys.len() {
            for j in i + 1..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
        assert_eq!(a.cache_key(), a.clone().cache_key());
    }

    #[test]
    fn job_rejects_unknown_and_malformed() {
        let cfg = tiny();
        assert!(Job::new(Workload::Spec("nosuch".into()), OrgKind::NoL3, cfg)
            .execute()
            .is_err());
        assert!(Job {
            workload: Workload::Mix("MIX1".into()),
            org: OrgKind::Tagless,
            nc_threshold: Some(8),
            cfg,
        }
        .execute()
        .is_err());
    }

    #[test]
    fn run_config_env_scaling() {
        // No env var: full config.
        let f = RunConfig::full(1);
        let e = RunConfig::from_env(1);
        assert!(e.measured_refs == f.measured_refs || std::env::var("TDC_SCALE").is_ok());
        assert!(RunConfig::quick(1).measured_refs < f.measured_refs);
    }
}
