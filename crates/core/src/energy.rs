//! Energy and EDP accounting (McPAT substitute).
//!
//! The paper extracts core and on-die cache power from McPAT and DRAM
//! energy from a CACTI-3DD-derived model. DRAM and SRAM-tag energies are
//! modeled in detail by `tdc-dram` / `tdc-sram-cache`; this module adds
//! representative constants for the cores and on-die caches and
//! assembles everything into a total-energy and energy-delay-product
//! report. The constants shift absolute EDP, not who wins: the paper's
//! EDP ordering is driven by runtime differences plus the DRAM/tag
//! energy deltas, which are modeled directly.

use tdc_dram::CPU_GHZ;
use tdc_util::Cycle;

/// Energy model constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Average power of one active out-of-order core (W).
    pub core_power_w: f64,
    /// Energy per L1 access (pJ).
    pub l1_access_pj: f64,
    /// Energy per L2 access (pJ).
    pub l2_access_pj: f64,
}

impl EnergyModel {
    /// Representative 3 GHz OoO core constants (McPAT-class values).
    pub fn paper_default() -> Self {
        Self {
            core_power_w: 4.0,
            l1_access_pj: 50.0,
            l2_access_pj: 400.0,
        }
    }

    /// Assembles the energy report for a run.
    ///
    /// * `active_cores` — cores actually executing a trace;
    /// * `makespan_cycles` — measured-phase wall-clock in CPU cycles;
    /// * `l1_accesses` / `l2_accesses` — on-die cache activity;
    /// * `l3_energy_pj` — DRAM devices + tag probes (from the L3);
    /// * `extra_static_mw` — additional leakage (e.g. the SRAM tag
    ///   array's), charged for the whole makespan.
    pub fn report(
        &self,
        active_cores: usize,
        makespan_cycles: Cycle,
        l1_accesses: u64,
        l2_accesses: u64,
        l3_energy_pj: f64,
        extra_static_mw: f64,
    ) -> EnergyReport {
        let seconds = makespan_cycles as f64 / (CPU_GHZ * 1e9);
        let core_j = self.core_power_w * active_cores as f64 * seconds;
        let sram_j =
            (l1_accesses as f64 * self.l1_access_pj + l2_accesses as f64 * self.l2_access_pj)
                * 1e-12;
        let dram_j = l3_energy_pj * 1e-12;
        let static_j = extra_static_mw * 1e-3 * seconds;
        let total_j = core_j + sram_j + dram_j + static_j;
        EnergyReport {
            seconds,
            core_j,
            sram_j,
            dram_j,
            static_j,
            total_j,
            edp: total_j * seconds,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Energy breakdown of one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Measured-phase runtime in seconds.
    pub seconds: f64,
    /// Core energy (J).
    pub core_j: f64,
    /// On-die L1/L2 access energy (J).
    pub sram_j: f64,
    /// DRAM devices + tag-probe energy (J).
    pub dram_j: f64,
    /// Extra static energy (e.g. tag array leakage) (J).
    pub static_j: f64,
    /// Total energy (J).
    pub total_j: f64,
    /// Energy-delay product (J·s).
    pub edp: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_sums_components() {
        let m = EnergyModel::paper_default();
        let r = m.report(4, 3_000_000_000, 1_000_000, 100_000, 1e9, 80.0);
        assert!((r.seconds - 1.0).abs() < 1e-9);
        assert!((r.core_j - 16.0).abs() < 1e-9);
        assert!(
            (r.total_j - (r.core_j + r.sram_j + r.dram_j + r.static_j)).abs() < 1e-12
        );
        assert!((r.edp - r.total_j * r.seconds).abs() < 1e-12);
    }

    #[test]
    fn faster_run_has_lower_core_energy_and_edp() {
        let m = EnergyModel::paper_default();
        let slow = m.report(1, 2_000_000, 1000, 100, 1e6, 0.0);
        let fast = m.report(1, 1_000_000, 1000, 100, 1e6, 0.0);
        assert!(fast.core_j < slow.core_j);
        assert!(fast.edp < slow.edp);
    }

    #[test]
    fn dram_energy_passthrough() {
        let m = EnergyModel::paper_default();
        let r = m.report(1, 3_000, 0, 0, 5e12, 0.0);
        assert!((r.dram_j - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_run_is_zero_energy() {
        let m = EnergyModel::paper_default();
        let r = m.report(4, 0, 0, 0, 0.0, 100.0);
        assert_eq!(r.total_j, 0.0);
        assert_eq!(r.edp, 0.0);
    }
}
