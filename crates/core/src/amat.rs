//! The paper's analytic average-memory-access-time model
//! (Equations 1–5).
//!
//! These closed forms let the simulated latencies be cross-checked
//! against the paper's own arithmetic, and they make the source of the
//! tagless advantage explicit: Equation 3 puts `AccessTime_SRAM-tag` on
//! the critical path of *every* L3 access, while Equation 4 has no tag
//! term at all — the cTLB returns the cache address directly.

/// Inputs to the AMAT equations, all in CPU cycles (rates are
/// fractions in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmatInputs {
    /// TLB miss rate (per memory reference).
    pub miss_rate_tlb: f64,
    /// Conventional TLB miss penalty (page walk).
    pub miss_penalty_tlb: f64,
    /// Combined L1/L2 hit time.
    pub hit_time_l12: f64,
    /// L1/L2 combined miss rate (fraction of references reaching L3).
    pub miss_rate_l12: f64,
    /// SRAM tag array access time (Table 6).
    pub access_time_sram_tag: f64,
    /// In-package 64B block access time.
    pub block_access_in_pkg: f64,
    /// L3 (DRAM cache) miss rate.
    pub miss_rate_l3: f64,
    /// Off-package page fetch time (fill).
    pub page_access_off_pkg: f64,
    /// Fraction of cTLB misses that miss the cache too (not victim
    /// hits).
    pub miss_rate_victim: f64,
    /// GIPT update time.
    pub access_time_gipt: f64,
}

impl AmatInputs {
    /// Representative values for the paper's 1GB configuration, derived
    /// from Tables 3/4/6: 11-cycle tags, ~58-cycle in-package block
    /// access, ~1000-cycle off-package page fetch, ~100-cycle walk.
    pub fn paper_representative() -> Self {
        Self {
            miss_rate_tlb: 0.01,
            miss_penalty_tlb: 100.0,
            hit_time_l12: 6.0,
            miss_rate_l12: 0.3,
            access_time_sram_tag: 11.0,
            block_access_in_pkg: 58.0,
            miss_rate_l3: 0.05,
            page_access_off_pkg: 1000.0,
            miss_rate_victim: 0.5,
            access_time_gipt: 60.0,
        }
    }
}

/// The analytic model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AmatModel;

impl AmatModel {
    /// Equation 3: average L3 latency of the SRAM-tag cache — the tag
    /// probe is paid on every access, hit or miss.
    pub fn avg_l3_latency_sram_tag(i: &AmatInputs) -> f64 {
        i.access_time_sram_tag + i.block_access_in_pkg + i.miss_rate_l3 * i.page_access_off_pkg
    }

    /// Equation 2: AMAT seen by a reference that hits the TLB
    /// (SRAM-tag organization).
    pub fn amat_tlb_hit_sram_tag(i: &AmatInputs) -> f64 {
        i.hit_time_l12 + i.miss_rate_l12 * Self::avg_l3_latency_sram_tag(i)
    }

    /// Equation 1: full AMAT of the SRAM-tag organization.
    pub fn amat_sram_tag(i: &AmatInputs) -> f64 {
        i.miss_rate_tlb * i.miss_penalty_tlb + Self::amat_tlb_hit_sram_tag(i)
    }

    /// Equation 5: cTLB miss penalty — the conventional walk plus, for
    /// the fraction that also misses the cache, the GIPT update and the
    /// off-package page fetch.
    pub fn miss_penalty_ctlb(i: &AmatInputs) -> f64 {
        i.miss_penalty_tlb + i.miss_rate_victim * (i.access_time_gipt + i.page_access_off_pkg)
    }

    /// Equation 4: full AMAT of the tagless organization. A TLB hit
    /// guarantees a cache hit, so below L1/L2 only the in-package block
    /// access remains — no tag term, no L3 miss term.
    pub fn amat_tagless(i: &AmatInputs) -> f64 {
        i.miss_rate_tlb * Self::miss_penalty_ctlb(i)
            + i.hit_time_l12
            + i.miss_rate_l12 * i.block_access_in_pkg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagless_wins_at_representative_point() {
        let i = AmatInputs::paper_representative();
        let sram = AmatModel::amat_sram_tag(&i);
        let tagless = AmatModel::amat_tagless(&i);
        assert!(
            tagless < sram,
            "tagless {tagless:.2} must beat SRAM-tag {sram:.2}"
        );
    }

    #[test]
    fn tag_latency_is_the_entire_l3_gap_when_miss_free() {
        // With a perfect L3 (no misses) and equal TLB behaviour, the
        // only difference left is the tag probe.
        let mut i = AmatInputs::paper_representative();
        i.miss_rate_l3 = 0.0;
        i.miss_rate_tlb = 0.0;
        let gap = AmatModel::amat_sram_tag(&i) - AmatModel::amat_tagless(&i);
        assert!((gap - i.miss_rate_l12 * i.access_time_sram_tag).abs() < 1e-12);
    }

    #[test]
    fn victim_hits_reduce_ctlb_penalty() {
        let mut i = AmatInputs::paper_representative();
        i.miss_rate_victim = 1.0;
        let all_miss = AmatModel::miss_penalty_ctlb(&i);
        i.miss_rate_victim = 0.0;
        let all_victim_hit = AmatModel::miss_penalty_ctlb(&i);
        assert!((all_victim_hit - i.miss_penalty_tlb).abs() < 1e-12);
        assert!(all_miss > all_victim_hit);
    }

    #[test]
    fn higher_l3_miss_rate_hurts_sram_tag_only() {
        let mut i = AmatInputs::paper_representative();
        let t0 = AmatModel::amat_tagless(&i);
        let s0 = AmatModel::amat_sram_tag(&i);
        i.miss_rate_l3 = 0.5;
        assert_eq!(AmatModel::amat_tagless(&i), t0, "Eq 4 has no L3 miss term");
        assert!(AmatModel::amat_sram_tag(&i) > s0);
    }

    #[test]
    fn equation_1_decomposes() {
        let i = AmatInputs::paper_representative();
        let manual = i.miss_rate_tlb * i.miss_penalty_tlb
            + i.hit_time_l12
            + i.miss_rate_l12
                * (i.access_time_sram_tag
                    + i.block_access_in_pkg
                    + i.miss_rate_l3 * i.page_access_off_pkg);
        assert!((AmatModel::amat_sram_tag(&i) - manual).abs() < 1e-12);
    }
}
