//! Run reports: everything a figure or table needs from one simulation.

use crate::energy::EnergyReport;
use crate::system::CoreResult;
use tdc_dram::DramStats;
use tdc_dram_cache::L3Stats;
use tdc_util::Cycle;

/// The complete result of simulating one (workload, organization) pair.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Organization label (e.g. `"cTLB"`).
    pub org: String,
    /// Workload label (e.g. `"mcf"` or `"MIX3"`).
    pub workload: String,
    /// Per-core measured results.
    pub cores: Vec<CoreResult>,
    /// L3 organization statistics (measured phase).
    pub l3: L3Stats,
    /// In-package DRAM device statistics, when the organization has one.
    pub in_pkg: Option<DramStats>,
    /// Off-package DRAM device statistics.
    pub off_pkg: DramStats,
    /// Energy breakdown and EDP.
    pub energy: EnergyReport,
}

impl RunReport {
    /// Aggregate IPC: the sum of per-core IPCs (system throughput).
    pub fn ipc_total(&self) -> f64 {
        self.cores.iter().map(|c| c.ipc).sum()
    }

    /// Total instructions retired in the measured phase.
    pub fn instrs_total(&self) -> u64 {
        self.cores.iter().map(|c| c.instrs).sum()
    }

    /// Longest per-core elapsed time (the measured-phase makespan).
    pub fn makespan_cycles(&self) -> Cycle {
        self.cores.iter().map(|c| c.cycles).max().unwrap_or(0)
    }

    /// Average L3 access latency *including* amortized TLB penalty, the
    /// quantity Fig. 8 plots: cycles of translation plus below-L2
    /// service per demand read.
    pub fn avg_l3_latency(&self) -> f64 {
        if self.l3.demand_reads == 0 {
            return 0.0;
        }
        let tlb: u64 = self.cores.iter().map(|c| c.tlb_penalty).sum();
        (self.l3.demand_latency_sum + tlb) as f64 / self.l3.demand_reads as f64
    }

    /// Measured L2-miss MPKI across all cores.
    pub fn mpki(&self) -> f64 {
        let instrs = self.instrs_total();
        if instrs == 0 {
            return 0.0;
        }
        let misses: u64 = self.cores.iter().map(|c| c.l2_misses).sum();
        misses as f64 * 1000.0 / instrs as f64
    }

    /// This run's IPC normalized to a baseline run (paper Figs. 7/9/12).
    pub fn normalized_ipc(&self, baseline: &RunReport) -> f64 {
        self.ipc_total() / baseline.ipc_total()
    }

    /// This run's EDP normalized to a baseline run.
    pub fn normalized_edp(&self, baseline: &RunReport) -> f64 {
        self.energy.edp / baseline.energy.edp
    }

    /// Fraction of demand reads served in-package.
    pub fn in_package_fraction(&self) -> f64 {
        self.l3.in_package_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::energy::EnergyModel;

    fn fake_core(ipc: f64, cycles: Cycle) -> CoreResult {
        CoreResult {
            instrs: (ipc * cycles as f64) as u64,
            cycles,
            ipc,
            l1_misses: 10,
            l2_misses: 5,
            tlb_penalty: 100,
            mem_stall: 0,
            refs: 100,
        }
    }

    fn fake_report(ipc: f64, edp_scale: f64) -> RunReport {
        let energy = EnergyModel::paper_default().report(
            1,
            (1e6 * edp_scale) as u64,
            1000,
            100,
            1e6,
            0.0,
        );
        RunReport {
            org: "test".into(),
            workload: "w".into(),
            cores: vec![fake_core(ipc, 1_000_000)],
            l3: L3Stats {
                demand_reads: 10,
                demand_latency_sum: 500,
                ..Default::default()
            },
            in_pkg: None,
            off_pkg: DramStats::default(),
            energy,
        }
    }

    #[test]
    fn aggregates() {
        let r = fake_report(2.0, 1.0);
        assert!((r.ipc_total() - 2.0).abs() < 1e-9);
        assert_eq!(r.makespan_cycles(), 1_000_000);
        // 500 latency + 100 tlb over 10 reads.
        assert!((r.avg_l3_latency() - 60.0).abs() < 1e-9);
        assert!(r.mpki() > 0.0);
    }

    #[test]
    fn avg_l3_latency_amortizes_tlb_penalty_across_cores() {
        // Hand-computed pin of the Fig. 8 quantity. Two cores with
        // different translation overheads share one L3:
        //   demand_latency_sum = 1_200 cycles over 40 demand reads,
        //   core 0 tlb_penalty = 300, core 1 tlb_penalty = 500.
        // avg = (1200 + 300 + 500) / 40 = 50 exactly.
        let mut r = fake_report(1.0, 1.0);
        r.cores = vec![fake_core(1.0, 1_000), fake_core(1.0, 1_000)];
        r.cores[0].tlb_penalty = 300;
        r.cores[1].tlb_penalty = 500;
        r.l3.demand_reads = 40;
        r.l3.demand_latency_sum = 1_200;
        assert!((r.avg_l3_latency() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn avg_l3_latency_is_zero_without_demand_reads() {
        let mut r = fake_report(1.0, 1.0);
        r.l3.demand_reads = 0;
        r.l3.demand_latency_sum = 0;
        // Division guard: no reads must not produce NaN.
        assert_eq!(r.avg_l3_latency(), 0.0);
    }

    #[test]
    fn zero_instruction_run_yields_finite_metrics() {
        // A run whose measured phase retired nothing (e.g. a degenerate
        // warmup-only configuration) must report zeros, not NaN/inf.
        let mut r = fake_report(0.0, 1.0);
        for c in &mut r.cores {
            c.instrs = 0;
            c.ipc = 0.0;
            c.l2_misses = 7; // misses with no instructions: worst case
        }
        assert_eq!(r.instrs_total(), 0);
        assert_eq!(r.mpki(), 0.0);
        assert_eq!(r.ipc_total(), 0.0);
        assert!(r.mpki().is_finite() && r.ipc_total().is_finite());
    }

    #[test]
    fn normalization() {
        let base = fake_report(1.0, 1.0);
        let better = fake_report(1.3, 0.8);
        assert!((better.normalized_ipc(&base) - 1.3).abs() < 1e-9);
        assert!(better.normalized_edp(&base) < 1.0);
    }
}
