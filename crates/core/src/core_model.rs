//! Per-core timing model.
//!
//! A full out-of-order pipeline is unnecessary for a memory-system
//! study; what matters is (a) how many cycles non-memory instructions
//! take and (b) how much memory latency the core can overlap. We model a
//! 4-wide core that retires `issue_width` instructions per cycle and
//! tolerates up to `mlp` outstanding L2 misses: a new miss stalls only
//! when the miss window is full, and then only until the oldest
//! outstanding miss returns. TLB miss handling serializes execution
//! (the handler occupies the core), as in the paper's Equations 1/4.

use std::collections::VecDeque;
use tdc_util::Cycle;

/// Core pipeline parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreParams {
    /// Instructions retired per cycle when not stalled.
    pub issue_width: u64,
    /// Maximum outstanding L2 misses (MSHR-limited MLP).
    pub mlp: usize,
}

impl CoreParams {
    /// Paper Table 3: 4-wide out-of-order cores. Effective MLP of 2
    /// reflects the dependence-limited overlap measured for memory-bound
    /// SPEC 2006 on out-of-order cores (pointer chasing and loop-carried
    /// dependences keep realized MLP far below the MSHR count).
    pub fn paper_default() -> Self {
        Self {
            issue_width: 4,
            mlp: 2,
        }
    }
}

/// Execution state of one core.
#[derive(Debug, Clone)]
pub struct CoreState {
    params: CoreParams,
    clock: Cycle,
    instrs: u64,
    /// Sub-cycle instruction accumulator (instructions not yet converted
    /// into whole cycles).
    residual_instrs: u64,
    /// Completion times of outstanding L2 misses.
    window: VecDeque<Cycle>,
    /// Total cycles spent stalled on a full miss window.
    stall_cycles: Cycle,
    /// Total cycles spent in TLB miss handling.
    tlb_stall_cycles: Cycle,
}

impl CoreState {
    /// A core at cycle zero.
    pub fn new(params: CoreParams) -> Self {
        Self {
            params,
            clock: 0,
            instrs: 0,
            residual_instrs: 0,
            window: VecDeque::with_capacity(params.mlp),
            stall_cycles: 0,
            tlb_stall_cycles: 0,
        }
    }

    /// Current local time.
    pub fn clock(&self) -> Cycle {
        self.clock
    }

    /// Instructions retired.
    pub fn instrs(&self) -> u64 {
        self.instrs
    }

    /// Cycles lost to a full miss window.
    pub fn stall_cycles(&self) -> Cycle {
        self.stall_cycles
    }

    /// Cycles lost to TLB miss handling.
    pub fn tlb_stall_cycles(&self) -> Cycle {
        self.tlb_stall_cycles
    }

    /// Retires `n` instructions, advancing the clock at `issue_width`
    /// instructions per cycle (with sub-cycle carry).
    pub fn retire(&mut self, n: u64) {
        self.instrs += n;
        self.residual_instrs += n;
        let adv = self.residual_instrs / self.params.issue_width;
        self.clock += adv;
        self.residual_instrs %= self.params.issue_width;
    }

    /// Serializes the core for `penalty` cycles (TLB miss handler).
    pub fn tlb_stall(&mut self, penalty: Cycle) {
        self.clock += penalty;
        self.tlb_stall_cycles += penalty;
    }

    /// Stalls until the miss window has a free slot (the moment a new
    /// L2 miss may be *issued* to the memory system).
    pub fn wait_for_miss_slot(&mut self) {
        // Retire completed misses.
        while let Some(&done) = self.window.front() {
            if done <= self.clock {
                self.window.pop_front();
            } else {
                break;
            }
        }
        if self.window.len() >= self.params.mlp {
            let done = self.window.pop_front().expect("window non-empty");
            if done > self.clock {
                self.stall_cycles += done - self.clock;
                self.clock = done;
            }
        }
    }

    /// Records an issued miss completing at absolute cycle `completion`.
    pub fn record_miss_completion(&mut self, completion: Cycle) {
        // Keep the window sorted by completion (latencies can differ).
        let pos = self.window.partition_point(|&d| d <= completion);
        self.window.insert(pos, completion);
    }

    /// Issues an L2 miss of latency `latency` at the current time,
    /// stalling first if the miss window is full.
    pub fn issue_miss(&mut self, latency: Cycle) {
        self.wait_for_miss_slot();
        self.record_miss_completion(self.clock + latency);
    }

    /// IPC so far (0 when no cycle has elapsed).
    pub fn ipc(&self) -> f64 {
        if self.clock == 0 {
            0.0
        } else {
            self.instrs as f64 / self.clock as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> CoreState {
        CoreState::new(CoreParams::paper_default())
    }

    #[test]
    fn retire_advances_at_issue_width() {
        let mut c = core();
        c.retire(8);
        assert_eq!(c.clock(), 2);
        assert_eq!(c.instrs(), 8);
    }

    #[test]
    fn subcycle_carry_is_exact() {
        let mut c = core();
        for _ in 0..5 {
            c.retire(1); // 5 instrs at width 4 = 1 cycle + 1 residual
        }
        assert_eq!(c.clock(), 1);
        c.retire(3);
        assert_eq!(c.clock(), 2);
    }

    #[test]
    fn peak_ipc_without_misses() {
        let mut c = core();
        c.retire(4000);
        assert!((c.ipc() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn misses_overlap_up_to_mlp() {
        let mut c = CoreState::new(CoreParams {
            issue_width: 4,
            mlp: 4,
        });
        // 4 misses of 100 cycles each: all fit in the window, no stall.
        for _ in 0..4 {
            c.issue_miss(100);
        }
        assert_eq!(c.stall_cycles(), 0);
        // The 5th stalls until the 1st returns.
        c.issue_miss(100);
        assert_eq!(c.clock(), 100);
        assert_eq!(c.stall_cycles(), 100);
    }

    #[test]
    fn default_mlp_overlaps_two_misses() {
        let mut c = core();
        c.issue_miss(100);
        c.issue_miss(100);
        assert_eq!(c.stall_cycles(), 0);
        c.issue_miss(100);
        assert_eq!(c.clock(), 100);
    }

    #[test]
    fn spaced_misses_do_not_stall() {
        let mut c = core();
        for _ in 0..20 {
            c.retire(1000); // 250 cycles between misses
            c.issue_miss(100);
        }
        assert_eq!(c.stall_cycles(), 0);
    }

    #[test]
    fn memory_bound_ipc_scales_with_latency() {
        let run = |lat: Cycle| {
            let mut c = core();
            for _ in 0..10_000 {
                c.retire(10);
                c.issue_miss(lat);
            }
            c.ipc()
        };
        let fast = run(40);
        let slow = run(160);
        assert!(fast > slow * 1.5, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn tlb_stall_serializes() {
        let mut c = core();
        c.retire(4);
        c.tlb_stall(500);
        assert_eq!(c.clock(), 501);
        assert_eq!(c.tlb_stall_cycles(), 500);
    }

    #[test]
    fn window_keeps_completion_order_with_mixed_latencies() {
        let mut c = core();
        c.issue_miss(300);
        c.issue_miss(50);
        // Window full; the next miss waits for the *earliest* completion
        // (the 50-cycle one), not the 300-cycle one.
        c.issue_miss(10);
        assert_eq!(c.clock(), 50);
    }
}
