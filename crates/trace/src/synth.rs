//! The statistical trace generator.
//!
//! A trace is a sequence of *page visits*. Each visit picks a page from
//! one of two components:
//!
//! * the **hot set** — a Zipf-skewed draw over the footprint, modelling
//!   temporal page reuse;
//! * the **cold stream** — a cyclic walk over a (possibly larger)
//!   region, modelling streaming/first-touch traffic and singleton
//!   pages.
//!
//! Within a visit, a geometric number of consecutive 64B blocks is
//! touched (spatial locality), and each block is referenced a geometric
//! number of times (block-level temporal locality, which the on-die
//! L1/L2 caches absorb). Instruction gaps between references are also
//! geometric, setting memory intensity.

use crate::profiles::WorkloadProfile;
use crate::record::{MemRef, TraceSource};
use std::collections::BTreeMap;
use tdc_util::{Bernoulli, Geometric, Pcg32, Rng, VAddr, Vpn, Zipf, BLOCKS_PER_PAGE};

/// Virtual address-space stride between workload instances: 2^28 pages
/// = 1TB of virtual space each, so instances never alias.
const INSTANCE_STRIDE_PAGES: u64 = 1 << 28;

/// Deterministic synthetic trace source for one workload instance.
///
/// # Examples
///
/// ```
/// use tdc_trace::{profiles, SyntheticWorkload, TraceSource};
/// let p = profiles::spec("omnetpp").expect("known benchmark");
/// let mut a = SyntheticWorkload::new(p.clone(), 7, 0);
/// let mut b = SyntheticWorkload::new(p.clone(), 7, 0);
/// assert_eq!(a.next_ref(), b.next_ref()); // same seed, same trace
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticWorkload {
    profile: WorkloadProfile,
    rng: Pcg32,
    vpn_base: u64,
    zipf: Zipf,
    hot_visit: Bernoulli,
    write: Bernoulli,
    blocks_hot: Geometric,
    blocks_stream: Geometric,
    repeats: Geometric,
    gap: Geometric,
    stream_region_pages: u64,
    stream_pos: u64,
    cur_vpn: u64,
    cur_block: u64,
    blocks_left: u64,
    repeats_left: u64,
}

fn geometric_with_mean(mean_extra: f64) -> Geometric {
    // Geometric over {0,1,...} with mean (1-p)/p = mean_extra.
    let p = 1.0 / (1.0 + mean_extra.max(0.0));
    Geometric::new(p).expect("p in (0,1] by construction")
}

impl SyntheticWorkload {
    /// Creates a generator for `profile`, seeded by `seed`, occupying
    /// virtual instance slot `instance` (each instance gets a disjoint
    /// 1TB virtual region, so four instances can share one address
    /// space, as PARSEC threads do, or live in separate ones).
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`WorkloadProfile::validate`].
    pub fn new(profile: WorkloadProfile, seed: u64, instance: u32) -> Self {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile {}: {e}", profile.name));
        let mut rng = Pcg32::seed_from_u64(seed ^ ((instance as u64) << 32));
        let zipf = Zipf::new(profile.footprint_pages, profile.zipf_skew)
            .expect("validated footprint/skew");
        let stream_region_pages = ((profile.footprint_pages as f64
            * profile.stream_region_factor) as u64)
            .max(profile.footprint_pages);
        let hot_visit = Bernoulli::new(profile.hot_visit_frac).expect("validated");
        let write = Bernoulli::new(profile.write_frac).expect("validated");
        let blocks_hot = geometric_with_mean(profile.mean_blocks_per_visit - 1.0);
        let blocks_stream = geometric_with_mean(profile.stream_blocks_per_visit - 1.0);
        let repeats = geometric_with_mean(profile.mean_repeats_per_block - 1.0);
        let gap = geometric_with_mean(profile.mean_gap_instrs);
        let stream_pos = rng.gen_range(stream_region_pages);
        let mut w = Self {
            profile,
            rng,
            vpn_base: instance as u64 * INSTANCE_STRIDE_PAGES,
            zipf,
            hot_visit,
            write,
            blocks_hot,
            blocks_stream,
            repeats,
            gap,
            stream_region_pages,
            stream_pos,
            cur_vpn: 0,
            cur_block: 0,
            blocks_left: 0,
            repeats_left: 0,
        };
        w.begin_visit();
        w
    }

    /// The workload profile driving this generator.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// The lowest VPN this instance can emit.
    pub fn vpn_base(&self) -> Vpn {
        Vpn(self.vpn_base)
    }

    /// The number of distinct pages this instance can emit (hot set plus
    /// stream region).
    pub fn region_pages(&self) -> u64 {
        self.stream_region_pages
    }

    fn begin_visit(&mut self) {
        let (vpn, blocks) = if self.hot_visit.sample(&mut self.rng) {
            let rank = self.zipf.sample(&mut self.rng);
            (rank, 1 + self.blocks_hot.sample(&mut self.rng))
        } else {
            let v = self.stream_pos;
            self.stream_pos = (self.stream_pos + 1) % self.stream_region_pages;
            (v, 1 + self.blocks_stream.sample(&mut self.rng))
        };
        self.cur_vpn = vpn;
        self.blocks_left = blocks.min(BLOCKS_PER_PAGE);
        self.cur_block = self.rng.gen_range(BLOCKS_PER_PAGE);
        self.repeats_left = 1 + self.repeats.sample(&mut self.rng);
    }

    fn advance(&mut self) {
        if self.repeats_left > 0 {
            self.repeats_left -= 1;
            if self.repeats_left > 0 {
                return;
            }
        }
        self.blocks_left -= 1;
        if self.blocks_left == 0 {
            self.begin_visit();
        } else {
            self.cur_block = (self.cur_block + 1) % BLOCKS_PER_PAGE;
            self.repeats_left = 1 + self.repeats.sample(&mut self.rng);
        }
    }

    fn current_addr(&mut self) -> VAddr {
        let word = self.rng.gen_range(8) * 8;
        Vpn(self.vpn_base + self.cur_vpn).addr(self.cur_block * 64 + word)
    }
}

impl TraceSource for SyntheticWorkload {
    fn next_ref(&mut self) -> MemRef {
        let vaddr = self.current_addr();
        let is_write = self.write.sample(&mut self.rng);
        let gap = self.gap.sample(&mut self.rng).min(u32::MAX as u64) as u32;
        self.advance();
        MemRef {
            vaddr,
            is_write,
            gap_instrs: gap,
        }
    }

    fn label(&self) -> &str {
        self.profile.name
    }
}

/// Counts references per page over the next `n_refs` of a generator —
/// the offline profiling pass of the §5.4 non-cacheable study.
///
/// The generator is consumed by value so the profiling run cannot
/// perturb a simulation's trace position; build a fresh, identically
/// seeded instance for the actual run.
///
/// Returns an ordered map: consumers flag pages in iteration order,
/// and that order must be deterministic (page-table node allocation is
/// first-touch, so flagging order shifts frame placement and timing).
pub fn page_access_counts(
    mut source: impl TraceSource,
    n_refs: u64,
) -> BTreeMap<Vpn, u64> {
    let mut counts = BTreeMap::new();
    for _ in 0..n_refs {
        let r = source.next_ref();
        *counts.entry(r.vaddr.page()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn small_profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "test",
            footprint_pages: 1000,
            zipf_skew: 0.8,
            hot_visit_frac: 0.7,
            mean_blocks_per_visit: 4.0,
            stream_blocks_per_visit: 2.0,
            stream_region_factor: 2.0,
            mean_repeats_per_block: 2.0,
            write_frac: 0.3,
            mean_gap_instrs: 20.0,
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SyntheticWorkload::new(small_profile(), 1, 0);
        let mut b = SyntheticWorkload::new(small_profile(), 1, 0);
        for _ in 0..1000 {
            assert_eq!(a.next_ref(), b.next_ref());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SyntheticWorkload::new(small_profile(), 1, 0);
        let mut b = SyntheticWorkload::new(small_profile(), 2, 0);
        let same = (0..100)
            .filter(|_| a.next_ref().vaddr == b.next_ref().vaddr)
            .count();
        assert!(same < 50);
    }

    #[test]
    fn addresses_stay_in_region() {
        let mut w = SyntheticWorkload::new(small_profile(), 3, 0);
        let region = w.region_pages();
        for _ in 0..10_000 {
            let v = w.next_ref().vaddr.page().0;
            assert!(v < region, "vpn {v} outside region {region}");
        }
    }

    #[test]
    fn instances_occupy_disjoint_regions() {
        let mut a = SyntheticWorkload::new(small_profile(), 1, 0);
        let mut b = SyntheticWorkload::new(small_profile(), 1, 1);
        for _ in 0..1000 {
            let va = a.next_ref().vaddr.page().0;
            let vb = b.next_ref().vaddr.page().0;
            assert!(va < INSTANCE_STRIDE_PAGES);
            assert!(vb >= INSTANCE_STRIDE_PAGES);
        }
    }

    #[test]
    fn write_fraction_approximate() {
        let mut w = SyntheticWorkload::new(small_profile(), 4, 0);
        let n = 100_000;
        let writes = (0..n).filter(|_| w.next_ref().is_write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "write frac {frac}");
    }

    #[test]
    fn gap_mean_approximate() {
        let mut w = SyntheticWorkload::new(small_profile(), 5, 0);
        let n = 100_000u64;
        let total: u64 = (0..n).map(|_| w.next_ref().gap_instrs as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 20.0).abs() < 1.0, "gap mean {mean}");
    }

    #[test]
    fn hot_pages_are_reused_more_than_uniform() {
        let mut p = small_profile();
        p.zipf_skew = 1.2;
        p.hot_visit_frac = 1.0;
        let w = SyntheticWorkload::new(p, 6, 0);
        let counts = page_access_counts(w, 200_000);
        let max = *counts.values().max().unwrap();
        let total: u64 = counts.values().sum();
        // Under uniform selection each page would get ~total/1000; Zipf
        // 1.2 concentrates far more on the top page.
        assert!(max as f64 > 20.0 * total as f64 / 1000.0);
    }

    #[test]
    fn stream_visits_fresh_pages_when_region_large() {
        let mut p = small_profile();
        p.hot_visit_frac = 0.0;
        p.stream_region_factor = 100.0;
        p.stream_blocks_per_visit = 1.0;
        p.mean_repeats_per_block = 1.0;
        let w = SyntheticWorkload::new(p, 7, 0);
        let counts = page_access_counts(w, 20_000);
        // Nearly every visited page is visited once: singleton behaviour.
        let singletons = counts.values().filter(|&&c| c <= 2).count();
        assert!(singletons as f64 > 0.9 * counts.len() as f64);
    }

    #[test]
    fn spatial_runs_touch_consecutive_blocks() {
        let mut p = small_profile();
        p.mean_blocks_per_visit = 32.0;
        p.mean_repeats_per_block = 1.0;
        p.hot_visit_frac = 1.0;
        let mut w = SyntheticWorkload::new(p, 8, 0);
        let mut consecutive = 0;
        let mut prev: Option<(u64, u64)> = None;
        for _ in 0..10_000 {
            let r = w.next_ref();
            let key = (r.vaddr.page().0, r.vaddr.block_in_page());
            if let Some((pv, pb)) = prev {
                if pv == key.0 && (key.1 == (pb + 1) % 64 || key.1 == pb) {
                    consecutive += 1;
                }
            }
            prev = Some(key);
        }
        assert!(consecutive > 8_000, "only {consecutive} sequential steps");
    }

    #[test]
    fn real_profiles_generate() {
        for p in profiles::spec_profiles() {
            let mut w = SyntheticWorkload::new(p.clone(), 42, 0);
            for _ in 0..1000 {
                let _ = w.next_ref();
            }
            assert_eq!(w.label(), p.name);
        }
    }

    #[test]
    fn access_counts_profile_sums_to_n() {
        let w = SyntheticWorkload::new(small_profile(), 9, 0);
        let counts = page_access_counts(w, 5000);
        assert_eq!(counts.values().sum::<u64>(), 5000);
    }
}
