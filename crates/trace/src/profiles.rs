//! Per-benchmark workload profiles (the SPEC/PARSEC substitution).
//!
//! Each profile captures the memory behaviour that page-based DRAM-cache
//! studies depend on. The parameter values are calibrated from published
//! characterizations: SPEC CPU2006 footprints (Henning, CAN 2007 — the
//! paper's reference \[16\]), published MPKI rankings of the memory-bound
//! subset, and the paper's own qualitative statements (e.g.
//! 459.GemsFDTD touching many low-reuse pages, libquantum streaming,
//! swaptions/fluidanimate being singleton-heavy with low MPKI).

use std::fmt;

/// Statistical description of one benchmark's memory behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (e.g. `"mcf"`).
    pub name: &'static str,
    /// Total data footprint, in 4KB pages.
    pub footprint_pages: u64,
    /// Zipf skew of page selection within the hot set (0 = uniform).
    pub zipf_skew: f64,
    /// Probability a page visit targets the hot (Zipf) set rather than
    /// the cyclic cold stream.
    pub hot_visit_frac: f64,
    /// Mean 64B blocks touched per hot-set page visit (spatial density).
    pub mean_blocks_per_visit: f64,
    /// Mean blocks touched per cold-stream page visit; 1.0 models
    /// singleton pages.
    pub stream_blocks_per_visit: f64,
    /// Size of the cold-stream region in pages, relative to the
    /// footprint (>= 1.0). Larger values mean streamed pages are revisited
    /// more rarely (more singletons / first-touch pages).
    pub stream_region_factor: f64,
    /// Mean consecutive references to one block before moving on
    /// (the on-die L1/L2 filter; >= 1).
    pub mean_repeats_per_block: f64,
    /// Fraction of references that are writes.
    pub write_frac: f64,
    /// Mean non-memory instructions between references (memory
    /// intensity: smaller gap = higher MPKI).
    pub mean_gap_instrs: f64,
}

impl WorkloadProfile {
    /// Footprint in megabytes.
    pub fn footprint_mb(&self) -> f64 {
        self.footprint_pages as f64 * 4096.0 / (1 << 20) as f64
    }

    /// Approximate memory references per kilo-instruction implied by the
    /// gap parameter.
    pub fn refs_per_kilo_instr(&self) -> f64 {
        1000.0 / (self.mean_gap_instrs + 1.0)
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.footprint_pages == 0 {
            return Err(ProfileError("footprint must be non-empty"));
        }
        for (v, what) in [
            (self.hot_visit_frac, "hot_visit_frac"),
            (self.write_frac, "write_frac"),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ProfileError(what));
            }
        }
        if self.zipf_skew < 0.0 || !self.zipf_skew.is_finite() {
            return Err(ProfileError("zipf_skew"));
        }
        if self.mean_blocks_per_visit < 1.0 || self.mean_blocks_per_visit > 64.0 {
            return Err(ProfileError("mean_blocks_per_visit"));
        }
        if self.stream_blocks_per_visit < 1.0 || self.stream_blocks_per_visit > 64.0 {
            return Err(ProfileError("stream_blocks_per_visit"));
        }
        if self.stream_region_factor < 1.0 {
            return Err(ProfileError("stream_region_factor"));
        }
        if self.mean_repeats_per_block < 1.0 {
            return Err(ProfileError("mean_repeats_per_block"));
        }
        if self.mean_gap_instrs < 0.0 {
            return Err(ProfileError("mean_gap_instrs"));
        }
        Ok(())
    }
}

/// Error naming the invalid profile field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileError(&'static str);

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid workload profile field: {}", self.0)
    }
}

impl std::error::Error for ProfileError {}

const MB: u64 = 256; // pages per megabyte

/// The 11 memory-bound SPEC CPU 2006 programs of the paper's Figure 7.
pub const SPEC_NAMES: [&str; 11] = [
    "mcf",
    "milc",
    "leslie3d",
    "soplex",
    "GemsFDTD",
    "libquantum",
    "lbm",
    "omnetpp",
    "sphinx3",
    "bwaves",
    "zeusmp",
];

/// The 4 PARSEC programs of §5.3.
pub const PARSEC_NAMES: [&str; 4] = ["swaptions", "facesim", "fluidanimate", "streamcluster"];

/// Table 5: the eight multi-programmed workload groupings.
pub const MIXES: [(&str, [&str; 4]); 8] = [
    ("MIX1", ["milc", "leslie3d", "omnetpp", "sphinx3"]),
    ("MIX2", ["milc", "leslie3d", "soplex", "omnetpp"]),
    ("MIX3", ["milc", "soplex", "GemsFDTD", "omnetpp"]),
    ("MIX4", ["soplex", "GemsFDTD", "lbm", "omnetpp"]),
    ("MIX5", ["mcf", "soplex", "GemsFDTD", "lbm"]),
    ("MIX6", ["mcf", "leslie3d", "lbm", "sphinx3"]),
    ("MIX7", ["milc", "soplex", "lbm", "sphinx3"]),
    ("MIX8", ["mcf", "leslie3d", "GemsFDTD", "omnetpp"]),
];

/// Returns the profile for a SPEC benchmark by (case-insensitive) name.
pub fn spec(name: &str) -> Option<&'static WorkloadProfile> {
    spec_profiles()
        .iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

/// Returns the profile for a PARSEC benchmark by (case-insensitive) name.
pub fn parsec(name: &str) -> Option<&'static WorkloadProfile> {
    parsec_profiles()
        .iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

/// Returns the Table 5 mix (four SPEC profiles) by name, e.g. `"MIX3"`.
pub fn mix(name: &str) -> Option<[&'static WorkloadProfile; 4]> {
    let (_, names) = MIXES.iter().find(|(n, _)| n.eq_ignore_ascii_case(name))?;
    Some(names.map(|n| spec(n).expect("mix references known benchmark")))
}

/// All 11 SPEC profiles.
pub fn spec_profiles() -> &'static [WorkloadProfile; 11] {
    &SPEC
}

/// All 4 PARSEC profiles.
pub fn parsec_profiles() -> &'static [WorkloadProfile; 4] {
    &PARSEC
}

static SPEC: [WorkloadProfile; 11] = [
    // 429.mcf: pointer-chasing over a sparse graph; the largest touched
    // working set per slice, highest MPKI, poor spatial locality.
    WorkloadProfile {
        name: "mcf",
        footprint_pages: 300 * MB,
        zipf_skew: 0.95,
        hot_visit_frac: 0.92,
        mean_blocks_per_visit: 2.0,
        stream_blocks_per_visit: 1.5,
        stream_region_factor: 1.0,
        mean_repeats_per_block: 1.5,
        write_frac: 0.20,
        mean_gap_instrs: 22.0,
    },
    // 433.milc: lattice QCD; large slice working set with a substantial
    // low-reuse sweep component — one of the two programs with a large
    // gap from Ideal (Fig. 7).
    WorkloadProfile {
        name: "milc",
        footprint_pages: 250 * MB,
        zipf_skew: 0.75,
        hot_visit_frac: 0.85,
        mean_blocks_per_visit: 8.0,
        stream_blocks_per_visit: 6.0,
        stream_region_factor: 1.2,
        mean_repeats_per_block: 1.5,
        write_frac: 0.30,
        mean_gap_instrs: 24.0,
    },
    // 437.leslie3d: structured-grid CFD; streaming with strong spatial
    // locality, working set fits the cache easily.
    WorkloadProfile {
        name: "leslie3d",
        footprint_pages: 80 * MB,
        zipf_skew: 0.95,
        hot_visit_frac: 0.85,
        mean_blocks_per_visit: 16.0,
        stream_blocks_per_visit: 12.0,
        stream_region_factor: 1.0,
        mean_repeats_per_block: 2.0,
        write_frac: 0.30,
        mean_gap_instrs: 30.0,
    },
    // 450.soplex: sparse LP solver; mixed regular/irregular.
    WorkloadProfile {
        name: "soplex",
        footprint_pages: 130 * MB,
        zipf_skew: 1.00,
        hot_visit_frac: 0.88,
        mean_blocks_per_visit: 6.0,
        stream_blocks_per_visit: 3.0,
        stream_region_factor: 1.15,
        mean_repeats_per_block: 1.5,
        write_frac: 0.25,
        mean_gap_instrs: 26.0,
    },
    // 459.GemsFDTD: FDTD over multiple large arrays; big working set
    // and a large fraction of pages with little reuse (paper §5.1/§5.4)
    // — the non-cacheable case-study target.
    WorkloadProfile {
        name: "GemsFDTD",
        footprint_pages: 400 * MB,
        zipf_skew: 0.60,
        hot_visit_frac: 0.96,
        mean_blocks_per_visit: 10.0,
        stream_blocks_per_visit: 1.5,
        stream_region_factor: 2.6,
        mean_repeats_per_block: 1.5,
        write_frac: 0.35,
        mean_gap_instrs: 20.0,
    },
    // 462.libquantum: repeated streaming over one ~100MB vector; extreme
    // spatial locality, fully cache-resident — the biggest tagless
    // latency win (Fig. 8).
    WorkloadProfile {
        name: "libquantum",
        footprint_pages: 96 * MB,
        zipf_skew: 0.20,
        hot_visit_frac: 1.00,
        mean_blocks_per_visit: 48.0,
        stream_blocks_per_visit: 32.0,
        stream_region_factor: 1.0,
        mean_repeats_per_block: 1.5,
        write_frac: 0.25,
        mean_gap_instrs: 16.0,
    },
    // 470.lbm: lattice-Boltzmann; dense streaming, write-heavy.
    WorkloadProfile {
        name: "lbm",
        footprint_pages: 160 * MB,
        zipf_skew: 0.55,
        hot_visit_frac: 0.80,
        mean_blocks_per_visit: 32.0,
        stream_blocks_per_visit: 24.0,
        stream_region_factor: 1.0,
        mean_repeats_per_block: 1.5,
        write_frac: 0.45,
        mean_gap_instrs: 18.0,
    },
    // 471.omnetpp: discrete-event simulation; small random objects, low
    // spatial density, strong page reuse.
    WorkloadProfile {
        name: "omnetpp",
        footprint_pages: 100 * MB,
        zipf_skew: 0.95,
        hot_visit_frac: 0.95,
        mean_blocks_per_visit: 2.0,
        stream_blocks_per_visit: 1.0,
        stream_region_factor: 1.25,
        mean_repeats_per_block: 2.0,
        write_frac: 0.35,
        mean_gap_instrs: 20.0,
    },
    // 482.sphinx3: speech recognition; read-dominated scoring loops with
    // good reuse.
    WorkloadProfile {
        name: "sphinx3",
        footprint_pages: 80 * MB,
        zipf_skew: 1.05,
        hot_visit_frac: 0.92,
        mean_blocks_per_visit: 4.0,
        stream_blocks_per_visit: 2.0,
        stream_region_factor: 1.3,
        mean_repeats_per_block: 2.5,
        write_frac: 0.10,
        mean_gap_instrs: 30.0,
    },
    // 410.bwaves: blast-wave CFD; big streaming arrays.
    WorkloadProfile {
        name: "bwaves",
        footprint_pages: 200 * MB,
        zipf_skew: 0.70,
        hot_visit_frac: 0.80,
        mean_blocks_per_visit: 24.0,
        stream_blocks_per_visit: 16.0,
        stream_region_factor: 1.1,
        mean_repeats_per_block: 1.5,
        write_frac: 0.30,
        mean_gap_instrs: 22.0,
    },
    // 434.zeusmp: astrophysics CFD; structured grid, moderate intensity.
    WorkloadProfile {
        name: "zeusmp",
        footprint_pages: 140 * MB,
        zipf_skew: 0.80,
        hot_visit_frac: 0.85,
        mean_blocks_per_visit: 16.0,
        stream_blocks_per_visit: 8.0,
        stream_region_factor: 1.1,
        mean_repeats_per_block: 2.0,
        write_frac: 0.30,
        mean_gap_instrs: 28.0,
    },
];

static PARSEC: [WorkloadProfile; 4] = [
    // swaptions: tiny cache-resident working set, large singleton
    // fraction, very low MPKI — caching overhead can outweigh benefit
    // (paper §5.3).
    WorkloadProfile {
        name: "swaptions",
        footprint_pages: 6 * MB,
        zipf_skew: 1.20,
        hot_visit_frac: 0.70,
        mean_blocks_per_visit: 4.0,
        stream_blocks_per_visit: 1.0,
        stream_region_factor: 40.0,
        mean_repeats_per_block: 6.0,
        write_frac: 0.20,
        mean_gap_instrs: 180.0,
    },
    // facesim: physics solve; high page reuse and high MPKI — clear
    // tagless winner on EDP (Fig. 12).
    WorkloadProfile {
        name: "facesim",
        footprint_pages: 200 * MB,
        zipf_skew: 0.95,
        hot_visit_frac: 0.90,
        mean_blocks_per_visit: 8.0,
        stream_blocks_per_visit: 4.0,
        stream_region_factor: 1.3,
        mean_repeats_per_block: 1.5,
        write_frac: 0.30,
        mean_gap_instrs: 22.0,
    },
    // fluidanimate: particle simulation; many singleton pages, low MPKI
    // for the simulated slices.
    WorkloadProfile {
        name: "fluidanimate",
        footprint_pages: 100 * MB,
        zipf_skew: 0.70,
        hot_visit_frac: 0.80,
        mean_blocks_per_visit: 3.0,
        stream_blocks_per_visit: 1.0,
        stream_region_factor: 3.0,
        mean_repeats_per_block: 3.0,
        write_frac: 0.35,
        mean_gap_instrs: 130.0,
    },
    // streamcluster: repeated scans of a point set; highest page reuse
    // and MPKI of the four — the paper's best PARSEC result (+24.0% IPC
    // over no cache).
    WorkloadProfile {
        name: "streamcluster",
        footprint_pages: 100 * MB,
        zipf_skew: 0.30,
        hot_visit_frac: 0.97,
        mean_blocks_per_visit: 32.0,
        stream_blocks_per_visit: 16.0,
        stream_region_factor: 1.0,
        mean_repeats_per_block: 1.5,
        write_frac: 0.15,
        mean_gap_instrs: 14.0,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for p in spec_profiles().iter().chain(parsec_profiles().iter()) {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn lookup_by_name_case_insensitive() {
        assert_eq!(spec("MCF").unwrap().name, "mcf");
        assert_eq!(spec("gemsfdtd").unwrap().name, "GemsFDTD");
        assert!(spec("perlbench").is_none());
        assert_eq!(parsec("FACESIM").unwrap().name, "facesim");
    }

    #[test]
    fn table5_mixes_resolve() {
        for (name, _) in MIXES {
            let four = mix(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(four.len(), 4);
        }
        // Table 5 row check: MIX5 = mcf-soplex-GemsFDTD-lbm.
        let m5 = mix("MIX5").unwrap();
        let names: Vec<_> = m5.iter().map(|p| p.name).collect();
        assert_eq!(names, ["mcf", "soplex", "GemsFDTD", "lbm"]);
    }

    #[test]
    fn spec_names_match_profiles() {
        for n in SPEC_NAMES {
            assert!(spec(n).is_some(), "{n} missing profile");
        }
        for n in PARSEC_NAMES {
            assert!(parsec(n).is_some(), "{n} missing profile");
        }
    }

    #[test]
    fn footprints_are_plausible() {
        // Footprints model the working set touched by a Simpoint slice:
        // every single program fits the 1GB cache, but a 4-program mix
        // exceeds it (paper §5.2: "multi-programmed workloads quadruple
        // the memory footprint"), which is what creates the Fig. 9/10
        // contention.
        for p in spec_profiles() {
            assert!(p.footprint_mb() < 1024.0, "{} too big", p.name);
        }
        assert!(spec("libquantum").unwrap().footprint_mb() < 256.0);
        // Including the cold-stream regions, a mix's touched space
        // exceeds the cache, which is what creates the contention.
        let touched: f64 = mix("MIX5")
            .unwrap()
            .iter()
            .map(|p| p.footprint_mb() * p.stream_region_factor)
            .sum();
        assert!(touched > 1024.0, "MIX5 touches {touched} MB, must exceed cache");
    }

    #[test]
    fn memory_intensity_ordering() {
        // streamcluster is the most intense PARSEC; swaptions the least.
        let sc = parsec("streamcluster").unwrap().refs_per_kilo_instr();
        let sw = parsec("swaptions").unwrap().refs_per_kilo_instr();
        assert!(sc > 5.0 * sw);
    }
}
