//! Trace records and the source abstraction.

use tdc_util::VAddr;

/// One memory reference in a trace.
///
/// `gap_instrs` is the number of non-memory instructions the core
/// executed since the previous memory reference; it is how a trace
/// encodes memory intensity (MPKI) without carrying every instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Virtual address of the reference.
    pub vaddr: VAddr,
    /// Whether this is a store.
    pub is_write: bool,
    /// Non-memory instructions preceding this reference.
    pub gap_instrs: u32,
}

impl MemRef {
    /// A read reference with no preceding gap.
    pub fn read(vaddr: VAddr) -> Self {
        Self {
            vaddr,
            is_write: false,
            gap_instrs: 0,
        }
    }

    /// A write reference with no preceding gap.
    pub fn write(vaddr: VAddr) -> Self {
        Self {
            vaddr,
            is_write: true,
            gap_instrs: 0,
        }
    }

    /// Sets the instruction gap, builder-style.
    pub fn with_gap(mut self, gap: u32) -> Self {
        self.gap_instrs = gap;
        self
    }

    /// Total instructions this record accounts for (the gap plus the
    /// memory instruction itself).
    pub fn instrs(&self) -> u64 {
        self.gap_instrs as u64 + 1
    }
}

/// An endless stream of memory references.
///
/// Sources are infinite; the simulation decides how many references (or
/// instructions) to consume, mirroring Simpoint-style slicing.
pub trait TraceSource {
    /// Produces the next reference.
    fn next_ref(&mut self) -> MemRef;

    /// A short label for reports.
    fn label(&self) -> &str {
        "trace"
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_ref(&mut self) -> MemRef {
        (**self).next_ref()
    }

    fn label(&self) -> &str {
        (**self).label()
    }
}

/// Replays a fixed sequence of references, cycling at the end.
///
/// Useful in unit tests and microbenchmarks where exact access patterns
/// are required.
///
/// # Examples
///
/// ```
/// use tdc_trace::{MemRef, ReplaySource, TraceSource};
/// use tdc_util::VAddr;
///
/// let mut src = ReplaySource::new(vec![MemRef::read(VAddr(0x40))]).expect("non-empty");
/// assert_eq!(src.next_ref().vaddr, VAddr(0x40));
/// assert_eq!(src.next_ref().vaddr, VAddr(0x40)); // cycles
/// ```
#[derive(Debug, Clone)]
pub struct ReplaySource {
    refs: Vec<MemRef>,
    pos: usize,
}

/// Error returned when constructing a [`ReplaySource`] from no records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmptyTraceError;

impl std::fmt::Display for EmptyTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay trace must contain at least one reference")
    }
}

impl std::error::Error for EmptyTraceError {}

impl ReplaySource {
    /// Creates a cycling replay source.
    ///
    /// # Errors
    ///
    /// Returns an error if `refs` is empty.
    pub fn new(refs: Vec<MemRef>) -> Result<Self, EmptyTraceError> {
        if refs.is_empty() {
            return Err(EmptyTraceError);
        }
        Ok(Self { refs, pos: 0 })
    }

    /// The underlying records.
    pub fn records(&self) -> &[MemRef] {
        &self.refs
    }
}

impl TraceSource for ReplaySource {
    fn next_ref(&mut self) -> MemRef {
        let r = self.refs[self.pos];
        self.pos = (self.pos + 1) % self.refs.len();
        r
    }

    fn label(&self) -> &str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_instr_accounting() {
        let r = MemRef::read(VAddr(0)).with_gap(9);
        assert_eq!(r.instrs(), 10);
        assert_eq!(MemRef::write(VAddr(0)).instrs(), 1);
    }

    #[test]
    fn replay_cycles_in_order() {
        let refs = vec![
            MemRef::read(VAddr(0)),
            MemRef::write(VAddr(64)),
            MemRef::read(VAddr(128)),
        ];
        let mut src = ReplaySource::new(refs.clone()).unwrap();
        for i in 0..9 {
            assert_eq!(src.next_ref(), refs[i % 3]);
        }
    }

    #[test]
    fn replay_rejects_empty() {
        assert!(ReplaySource::new(vec![]).is_err());
    }

    #[test]
    fn boxed_source_dispatches() {
        let mut boxed: Box<dyn TraceSource> =
            Box::new(ReplaySource::new(vec![MemRef::read(VAddr(7))]).unwrap());
        assert_eq!(boxed.next_ref().vaddr, VAddr(7));
        assert_eq!(boxed.label(), "replay");
    }
}
