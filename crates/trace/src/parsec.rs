//! Multi-threaded (PARSEC) trace construction.
//!
//! A PARSEC run is one process with four threads sharing an address
//! space: every thread interleaves references to a **shared** region
//! (the program's main data structure, identical pages for all threads)
//! with references to a **private** region (per-thread stacks and
//! partitions). Because all threads share one page table, shared pages
//! are cacheable without aliasing (paper §3.5).

use crate::profiles::{self, WorkloadProfile};
use crate::record::{MemRef, TraceSource};
use crate::synth::SyntheticWorkload;
use tdc_util::{Bernoulli, Pcg32};

/// Fraction of references that target the shared region, per benchmark.
fn shared_frac(name: &str) -> f64 {
    match name {
        "swaptions" => 0.10,
        "facesim" => 0.40,
        "fluidanimate" => 0.30,
        "streamcluster" => 0.80,
        _ => 0.25,
    }
}

/// One thread's trace: a probabilistic interleave of a shared-region
/// generator and a private-region generator.
#[derive(Debug, Clone)]
pub struct ThreadTrace {
    shared: SyntheticWorkload,
    private: SyntheticWorkload,
    pick_shared: Bernoulli,
    rng: Pcg32,
    label: String,
}

impl TraceSource for ThreadTrace {
    fn next_ref(&mut self) -> MemRef {
        if self.pick_shared.sample(&mut self.rng) {
            self.shared.next_ref()
        } else {
            self.private.next_ref()
        }
    }

    fn label(&self) -> &str {
        &self.label
    }
}

/// Builder for a 4-thread PARSEC workload.
#[derive(Debug, Clone)]
pub struct ParsecTraces {
    profile: WorkloadProfile,
    seed: u64,
    threads: u32,
}

impl ParsecTraces {
    /// Creates traces for a named PARSEC benchmark.
    ///
    /// Returns `None` if the benchmark is not one of the four the paper
    /// evaluates.
    pub fn new(name: &str, seed: u64) -> Option<Self> {
        Some(Self::with_profile(profiles::parsec(name)?.clone(), seed))
    }

    /// Creates traces from an explicit profile (e.g. a scaled one).
    pub fn with_profile(profile: WorkloadProfile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            threads: 4,
        }
    }

    /// Number of threads (the paper's 4-core configuration).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// The benchmark profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Builds the per-thread trace source for thread `tid`.
    ///
    /// All threads address the same shared region (instance slot 0) but
    /// use thread-specific random streams, so they touch the *same
    /// pages* in different orders — the sharing pattern that matters for
    /// a shared last-level cache. Private regions use disjoint instance
    /// slots.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= self.threads()`.
    pub fn thread(&self, tid: u32) -> ThreadTrace {
        assert!(tid < self.threads, "thread id out of range");
        let sf = shared_frac(self.profile.name);

        // Shared region: full footprint, common instance slot.
        let shared_profile = self.profile.clone();
        let shared = SyntheticWorkload::new(
            shared_profile,
            self.seed ^ (0xABCD_0000 + tid as u64),
            0,
        );

        // Private region: a quarter of the footprint per thread,
        // disjoint instance slots 1..=4.
        let mut private_profile = self.profile.clone();
        private_profile.footprint_pages = (self.profile.footprint_pages / 4).max(16);
        let private = SyntheticWorkload::new(
            private_profile,
            self.seed ^ (0x1234_0000 + tid as u64),
            tid + 1,
        );

        ThreadTrace {
            shared,
            private,
            pick_shared: Bernoulli::new(sf).expect("fraction in range"),
            rng: Pcg32::seed_from_u64(self.seed ^ (0x77_0000 + tid as u64)),
            label: format!("{}-t{}", self.profile.name, tid),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn known_benchmarks_build() {
        for n in profiles::PARSEC_NAMES {
            assert!(ParsecTraces::new(n, 1).is_some(), "{n}");
        }
        assert!(ParsecTraces::new("raytrace", 1).is_none());
    }

    #[test]
    fn threads_share_pages_in_shared_region() {
        let p = ParsecTraces::new("streamcluster", 3).unwrap();
        let pages = |tid: u32| -> HashSet<u64> {
            let mut t = p.thread(tid);
            (0..2_000_000).map(|_| t.next_ref().vaddr.page().0).collect()
        };
        let a = pages(0);
        let b = pages(1);
        let common = a.intersection(&b).count();
        assert!(
            common as f64 > 0.3 * a.len().min(b.len()) as f64,
            "only {common} shared pages between threads"
        );
    }

    #[test]
    fn private_regions_are_disjoint() {
        let p = ParsecTraces::new("swaptions", 4).unwrap();
        let mut t0 = p.thread(0);
        let mut t1 = p.thread(1);
        // Instance slot stride is 2^28 pages: private pages of thread 0
        // live in slot 1, thread 1 in slot 2.
        let slot = |v: u64| v >> 28;
        for _ in 0..5_000 {
            let s0 = slot(t0.next_ref().vaddr.page().0);
            let s1 = slot(t1.next_ref().vaddr.page().0);
            assert!(s0 == 0 || s0 == 1, "t0 in slot {s0}");
            assert!(s1 == 0 || s1 == 2, "t1 in slot {s1}");
        }
    }

    #[test]
    fn thread_traces_are_deterministic() {
        let p = ParsecTraces::new("facesim", 5).unwrap();
        let mut a = p.thread(2);
        let mut b = p.thread(2);
        for _ in 0..100 {
            assert_eq!(a.next_ref(), b.next_ref());
        }
    }

    #[test]
    fn labels_identify_threads() {
        let p = ParsecTraces::new("fluidanimate", 6).unwrap();
        assert_eq!(p.thread(3).label(), "fluidanimate-t3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn thread_id_bounds_checked() {
        let p = ParsecTraces::new("facesim", 1).unwrap();
        let _ = p.thread(4);
    }
}
