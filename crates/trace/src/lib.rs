//! Synthetic memory-reference traces for the tagless DRAM cache study.
//!
//! The paper drives McSimA+ with Pin traces of SPEC CPU2006 and PARSEC,
//! sliced with Simpoint. Neither the binaries nor the traces can ship
//! with this repository, so this crate provides the documented
//! substitution (see `DESIGN.md` §2): **statistical trace generators**
//! whose parameters — footprint, page-reuse skew, spatial density,
//! block-level temporal locality, write fraction, memory intensity —
//! are calibrated to the published memory behaviour of each named
//! benchmark. These are exactly the axes that determine page-based
//! DRAM-cache behaviour, so the shape of every result is preserved.
//!
//! * [`MemRef`] / [`TraceSource`] — the trace record and stream traits.
//! * [`SyntheticWorkload`] — the generator: a two-component page-visit
//!   model (Zipf-skewed hot set + cyclic cold stream) with geometric
//!   within-page spatial runs and per-block repeats.
//! * [`profiles`] — per-benchmark [`WorkloadProfile`]s for the 11
//!   memory-bound SPEC programs, the 8 multi-programmed mixes of
//!   Table 5, and the 4 PARSEC programs (§5.3).
//! * [`parsec`] — multi-threaded trace construction with shared pages.
//!
//! # Examples
//!
//! ```
//! use tdc_trace::{profiles, SyntheticWorkload, TraceSource};
//!
//! let profile = profiles::spec("libquantum").expect("known benchmark");
//! let mut src = SyntheticWorkload::new(profile.clone(), 0, 1);
//! let r = src.next_ref();
//! assert!(r.gap_instrs < 10_000);
//! ```

pub mod parsec;
pub mod profiles;
pub mod record;
pub mod synth;

pub use parsec::ParsecTraces;
pub use profiles::{WorkloadProfile, MIXES, PARSEC_NAMES, SPEC_NAMES};
pub use record::{MemRef, ReplaySource, TraceSource};
pub use synth::{page_access_counts, SyntheticWorkload};
