//! TLBs, page tables, and the page-table walker.
//!
//! This crate models the virtual-memory substrate the tagless design
//! modifies (role in the stack: DESIGN.md §3; the VC/NC/PU semantics
//! trace to DESIGN.md §1):
//!
//! * [`Pte`] — a page-table entry extended with the paper's three flag
//!   bits: *Valid-in-Cache* (VC), *Non-Cacheable* (NC), and *Pending
//!   Update* (PU). When VC is set, the PTE's frame field holds a cache
//!   address instead of a physical address (paper §3.2).
//! * [`PageTable`] — a per-process page table with on-demand physical
//!   frame allocation (demand paging).
//! * [`Tlb`] — a set-associative TLB that can hold either conventional
//!   VA→PA mappings or the cTLB's VA→CA mappings; the hardware
//!   organization is identical, which is the paper's point.
//! * [`walker`] — generation of the dependent PTE fetch addresses of a
//!   4-level radix walk, so the simulator can charge realistic,
//!   locality-sensitive walk costs through the cache hierarchy.
//!
//! # Examples
//!
//! ```
//! use tdc_tlb::{PageTable, Tlb, TlbEntry, Translation};
//! use tdc_util::{Vpn, Cpn};
//!
//! let mut pt = PageTable::new(0);
//! let pte = pt.translate_or_fault(Vpn(42));
//! assert!(matches!(pte.frame, Translation::Physical(_)));
//!
//! let mut tlb = Tlb::new(32, 32).expect("fully associative 32-entry");
//! tlb.insert(Vpn(42), TlbEntry::cache(Cpn(7), false));
//! assert!(tlb.lookup(Vpn(42)).is_some());
//! ```

pub mod page_table;
pub mod tlb;
pub mod walker;

pub use page_table::{PageTable, Pte, Translation};
pub use tlb::{Tlb, TlbEntry};
pub use walker::{walk_addresses, WALK_LEVELS};
