//! Set-associative TLB model, usable as a conventional TLB or as the
//! paper's cache-map TLB (cTLB).
//!
//! The hardware organization is identical in both roles (paper §3.2);
//! only the payload differs: a VA→PA mapping for non-cacheable pages
//! (NC=1) or a VA→CA mapping for cached pages (NC=0).

use crate::page_table::Translation;
use std::fmt;
use tdc_util::probe::{NoProbe, Probe, ProbeEvent};
use tdc_util::{Cpn, Cycle, Ppn, Vpn};

/// The payload of a TLB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// The mapping this entry provides.
    pub frame: Translation,
    /// Non-Cacheable bit copied from the PTE.
    pub nc: bool,
}

impl TlbEntry {
    /// A conventional VA→PA entry.
    pub fn physical(ppn: Ppn, nc: bool) -> Self {
        Self {
            frame: Translation::Physical(ppn),
            nc,
        }
    }

    /// A cTLB VA→CA entry (cached pages are by definition cacheable).
    pub fn cache(cpn: Cpn, nc: bool) -> Self {
        Self {
            frame: Translation::Cache(cpn),
            nc,
        }
    }
}

/// Error returned for an invalid TLB shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbShapeError(&'static str);

impl fmt::Display for TlbShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid TLB shape: {}", self.0)
    }
}

impl std::error::Error for TlbShapeError {}

#[derive(Debug, Clone, Copy)]
struct Slot {
    vpn: Vpn,
    entry: TlbEntry,
    valid: bool,
    stamp: u64,
}

/// A set-associative, LRU TLB.
///
/// `ways == entries` gives a fully associative TLB (the paper's 32-entry
/// L1 TLBs); the 512-entry L2 TLB is typically configured 8-way.
#[derive(Debug, Clone)]
pub struct Tlb<P: Probe = NoProbe> {
    slots: Vec<Slot>,
    sets: u64,
    ways: u32,
    tick: u64,
    hits: u64,
    misses: u64,
    level: u8,
    probe: P,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries and associativity
    /// `ways`.
    ///
    /// # Errors
    ///
    /// Returns an error if `entries` is zero, `ways` is zero, or `ways`
    /// does not divide `entries`.
    pub fn new(entries: u32, ways: u32) -> Result<Self, TlbShapeError> {
        Self::with_probe(entries, ways, 0, NoProbe)
    }
}

impl<P: Probe> Tlb<P> {
    /// Creates an instrumented TLB reporting lookups and insertions to
    /// `probe`, tagged with hierarchy `level` (1 = L1, 2 = L2). The
    /// cycle-less [`Tlb::lookup`]/[`Tlb::insert`] stamp events at cycle
    /// 0; use the `*_at` variants when a clock is available.
    ///
    /// # Errors
    ///
    /// Returns an error if `entries` is zero, `ways` is zero, or `ways`
    /// does not divide `entries`.
    pub fn with_probe(
        entries: u32,
        ways: u32,
        level: u8,
        probe: P,
    ) -> Result<Self, TlbShapeError> {
        if entries == 0 || ways == 0 {
            return Err(TlbShapeError("entries and ways must be non-zero"));
        }
        if !entries.is_multiple_of(ways) {
            return Err(TlbShapeError("ways must divide entries"));
        }
        let invalid = Slot {
            vpn: Vpn(0),
            entry: TlbEntry::physical(Ppn(0), false),
            valid: false,
            stamp: 0,
        };
        Ok(Self {
            slots: vec![invalid; entries as usize],
            sets: (entries / ways) as u64,
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
            level,
            probe,
        })
    }

    /// Total entry count.
    pub fn entries(&self) -> u32 {
        self.slots.len() as u32
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate; 0 when idle.
    pub fn miss_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }

    fn set_range(&self, vpn: Vpn) -> std::ops::Range<usize> {
        let set = (vpn.0 % self.sets) as usize;
        let w = self.ways as usize;
        set * w..set * w + w
    }

    /// Looks up a translation, updating LRU state and hit/miss counters.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<TlbEntry> {
        self.lookup_at(0, vpn)
    }

    /// [`Tlb::lookup`] with an explicit cycle stamp for probe events.
    pub fn lookup_at(&mut self, now: Cycle, vpn: Vpn) -> Option<TlbEntry> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(vpn);
        let mut found = None;
        for slot in &mut self.slots[range] {
            if slot.valid && slot.vpn == vpn {
                slot.stamp = tick;
                found = Some(slot.entry);
                break;
            }
        }
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if self.probe.enabled() {
            self.probe.emit(
                now,
                ProbeEvent::TlbLookup {
                    level: self.level,
                    hit: found.is_some(),
                },
            );
        }
        found
    }

    /// Checks residence without updating LRU or counters. This is the
    /// probe the GIPT's TLB-residence bit vector abstracts: a page still
    /// mapped by some TLB must not be evicted (paper §3.2).
    pub fn contains(&self, vpn: Vpn) -> bool {
        let range = self.set_range(vpn);
        self.slots[range.clone()]
            .iter()
            .any(|s| s.valid && s.vpn == vpn)
    }

    /// Inserts (or updates) a translation, returning the displaced entry
    /// if a valid one was evicted.
    pub fn insert(&mut self, vpn: Vpn, entry: TlbEntry) -> Option<(Vpn, TlbEntry)> {
        self.insert_at(0, vpn, entry)
    }

    /// [`Tlb::insert`] with an explicit cycle stamp for probe events.
    pub fn insert_at(
        &mut self,
        now: Cycle,
        vpn: Vpn,
        entry: TlbEntry,
    ) -> Option<(Vpn, TlbEntry)> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(vpn);
        let slots = &mut self.slots[range];

        let displaced = if let Some(slot) = slots.iter_mut().find(|s| s.valid && s.vpn == vpn) {
            slot.entry = entry;
            slot.stamp = tick;
            None
        } else {
            let victim = match slots.iter().position(|s| !s.valid) {
                Some(i) => i,
                None => slots
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.stamp)
                    .map(|(i, _)| i)
                    .expect("non-empty set"),
            };
            let displaced = slots[victim]
                .valid
                .then_some((slots[victim].vpn, slots[victim].entry));
            slots[victim] = Slot {
                vpn,
                entry,
                valid: true,
                stamp: tick,
            };
            displaced
        };
        if self.probe.enabled() {
            self.probe.emit(
                now,
                ProbeEvent::TlbInsert {
                    level: self.level,
                    evicted: displaced.is_some(),
                },
            );
        }
        displaced
    }

    /// Invalidates a mapping (TLB shootdown); returns whether it was
    /// present.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let range = self.set_range(vpn);
        for slot in &mut self.slots[range] {
            if slot.valid && slot.vpn == vpn {
                slot.valid = false;
                return true;
            }
        }
        false
    }

    /// Invalidates everything (e.g. a full flush at context switch).
    pub fn flush(&mut self) {
        for slot in &mut self.slots {
            slot.valid = false;
        }
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> u32 {
        self.slots.iter().filter(|s| s.valid).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64) -> TlbEntry {
        TlbEntry::physical(Ppn(n), false)
    }

    #[test]
    fn shape_validation() {
        assert!(Tlb::new(0, 1).is_err());
        assert!(Tlb::new(32, 0).is_err());
        assert!(Tlb::new(32, 5).is_err());
        assert!(Tlb::new(32, 32).is_ok());
        assert!(Tlb::new(512, 8).is_ok());
    }

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(32, 32).unwrap();
        assert!(t.lookup(Vpn(1)).is_none());
        t.insert(Vpn(1), entry(9));
        assert_eq!(t.lookup(Vpn(1)), Some(entry(9)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction_in_full_set() {
        let mut t = Tlb::new(2, 2).unwrap(); // 1 set, 2 ways
        t.insert(Vpn(1), entry(1));
        t.insert(Vpn(2), entry(2));
        t.lookup(Vpn(1)); // 1 becomes MRU
        let evicted = t.insert(Vpn(3), entry(3));
        assert_eq!(evicted.map(|(v, _)| v), Some(Vpn(2)));
        assert!(t.contains(Vpn(1)));
        assert!(!t.contains(Vpn(2)));
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut t = Tlb::new(4, 4).unwrap();
        t.insert(Vpn(1), entry(1));
        let displaced = t.insert(Vpn(1), TlbEntry::cache(Cpn(5), false));
        assert!(displaced.is_none());
        assert_eq!(t.lookup(Vpn(1)), Some(TlbEntry::cache(Cpn(5), false)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn contains_does_not_touch_lru_or_stats() {
        let mut t = Tlb::new(2, 2).unwrap();
        t.insert(Vpn(1), entry(1));
        t.insert(Vpn(2), entry(2));
        assert!(t.contains(Vpn(1)));
        // LRU order unchanged: 1 is still oldest and gets evicted.
        let evicted = t.insert(Vpn(3), entry(3));
        assert_eq!(evicted.map(|(v, _)| v), Some(Vpn(1)));
        assert_eq!(t.hits() + t.misses(), 0);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = Tlb::new(8, 8).unwrap();
        t.insert(Vpn(1), entry(1));
        t.insert(Vpn(2), entry(2));
        assert!(t.invalidate(Vpn(1)));
        assert!(!t.invalidate(Vpn(1)));
        assert_eq!(t.occupancy(), 1);
        t.flush();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn set_indexing_separates_conflicting_vpns() {
        let mut t = Tlb::new(8, 2).unwrap(); // 4 sets
        // VPNs 0 and 4 share a set; 1 goes elsewhere.
        t.insert(Vpn(0), entry(0));
        t.insert(Vpn(4), entry(4));
        t.insert(Vpn(8), entry(8)); // same set, evicts LRU = 0
        assert!(!t.contains(Vpn(0)));
        assert!(t.contains(Vpn(4)));
    }

    #[test]
    fn miss_rate_reporting() {
        let mut t = Tlb::new(4, 4).unwrap();
        assert_eq!(t.miss_rate(), 0.0);
        t.lookup(Vpn(1));
        t.insert(Vpn(1), entry(1));
        t.lookup(Vpn(1));
        assert!((t.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ctlb_entries_carry_cache_addresses() {
        let mut t = Tlb::new(32, 32).unwrap();
        t.insert(Vpn(100), TlbEntry::cache(Cpn(55), false));
        let e = t.lookup(Vpn(100)).unwrap();
        assert_eq!(e.frame, Translation::Cache(Cpn(55)));
        assert!(!e.nc);
    }
}
