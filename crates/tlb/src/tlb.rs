//! Set-associative TLB model, usable as a conventional TLB or as the
//! paper's cache-map TLB (cTLB).
//!
//! The hardware organization is identical in both roles (paper §3.2);
//! only the payload differs: a VA→PA mapping for non-cacheable pages
//! (NC=1) or a VA→CA mapping for cached pages (NC=0).
//!
//! Storage is struct-of-arrays (DESIGN.md §15): the lookup scan touches
//! only a contiguous `u64` key array (one cache line covers a whole
//! 8-way set), with entries and recency stamps in parallel arrays that
//! are read only on a hit. An invalid slot is keyed by the reserved
//! sentinel `INVALID_KEY`, so the hot loop is a single compare per
//! way with no separate validity flag to load.

use crate::page_table::Translation;
use std::fmt;
use tdc_util::probe::{NoProbe, Probe, ProbeEvent};
use tdc_util::{Cpn, Cycle, Ppn, Vpn};

/// The payload of a TLB entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbEntry {
    /// The mapping this entry provides.
    pub frame: Translation,
    /// Non-Cacheable bit copied from the PTE.
    pub nc: bool,
}

impl TlbEntry {
    /// A conventional VA→PA entry.
    pub fn physical(ppn: Ppn, nc: bool) -> Self {
        Self {
            frame: Translation::Physical(ppn),
            nc,
        }
    }

    /// A cTLB VA→CA entry (cached pages are by definition cacheable).
    pub fn cache(cpn: Cpn, nc: bool) -> Self {
        Self {
            frame: Translation::Cache(cpn),
            nc,
        }
    }
}

/// Error returned for an invalid TLB shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TlbShapeError(&'static str);

impl fmt::Display for TlbShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid TLB shape: {}", self.0)
    }
}

impl std::error::Error for TlbShapeError {}

/// Key-array sentinel marking an empty slot. Real VPNs are at most 36
/// bits (the GIPT's PPN width bounds the address space), so the
/// all-ones key can never collide with a mapped page.
const INVALID_KEY: u64 = u64::MAX;

/// A set-associative, LRU TLB.
///
/// `ways == entries` gives a fully associative TLB (the paper's 32-entry
/// L1 TLBs); the 512-entry L2 TLB is typically configured 8-way.
#[derive(Debug, Clone)]
pub struct Tlb<P: Probe = NoProbe> {
    /// VPN per slot ([`INVALID_KEY`] = empty); the only array the
    /// lookup scan reads.
    keys: Vec<u64>,
    /// Payload per slot, read on hit.
    payloads: Vec<TlbEntry>,
    /// LRU stamp per slot, written on hit/insert.
    stamps: Vec<u64>,
    sets: u64,
    ways: u32,
    tick: u64,
    hits: u64,
    misses: u64,
    level: u8,
    probe: P,
}

impl Tlb {
    /// Creates a TLB with `entries` total entries and associativity
    /// `ways`.
    ///
    /// # Errors
    ///
    /// Returns an error if `entries` is zero, `ways` is zero, or `ways`
    /// does not divide `entries`.
    pub fn new(entries: u32, ways: u32) -> Result<Self, TlbShapeError> {
        Self::with_probe(entries, ways, 0, NoProbe)
    }
}

impl<P: Probe> Tlb<P> {
    /// Creates an instrumented TLB reporting lookups and insertions to
    /// `probe`, tagged with hierarchy `level` (1 = L1, 2 = L2). The
    /// cycle-less [`Tlb::lookup`]/[`Tlb::insert`] stamp events at cycle
    /// 0; use the `*_at` variants when a clock is available.
    ///
    /// # Errors
    ///
    /// Returns an error if `entries` is zero, `ways` is zero, or `ways`
    /// does not divide `entries`.
    pub fn with_probe(
        entries: u32,
        ways: u32,
        level: u8,
        probe: P,
    ) -> Result<Self, TlbShapeError> {
        if entries == 0 || ways == 0 {
            return Err(TlbShapeError("entries and ways must be non-zero"));
        }
        if !entries.is_multiple_of(ways) {
            return Err(TlbShapeError("ways must divide entries"));
        }
        Ok(Self {
            keys: vec![INVALID_KEY; entries as usize],
            payloads: vec![TlbEntry::physical(Ppn(0), false); entries as usize],
            stamps: vec![0; entries as usize],
            sets: (entries / ways) as u64,
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
            level,
            probe,
        })
    }

    /// Total entry count.
    pub fn entries(&self) -> u32 {
        self.keys.len() as u32
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate; 0 when idle.
    pub fn miss_rate(&self) -> f64 {
        let n = self.hits + self.misses;
        if n == 0 {
            0.0
        } else {
            self.misses as f64 / n as f64
        }
    }

    #[inline]
    fn set_range(&self, vpn: Vpn) -> std::ops::Range<usize> {
        let set = (vpn.0 % self.sets) as usize;
        let w = self.ways as usize;
        set * w..set * w + w
    }

    /// Looks up a translation, updating LRU state and hit/miss counters.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<TlbEntry> {
        self.lookup_at(0, vpn)
    }

    /// [`Tlb::lookup`] with an explicit cycle stamp for probe events.
    #[inline]
    pub fn lookup_at(&mut self, now: Cycle, vpn: Vpn) -> Option<TlbEntry> {
        self.tick += 1;
        let tick = self.tick;
        let mut found = None;
        for i in self.set_range(vpn) {
            if self.keys[i] == vpn.0 {
                self.stamps[i] = tick;
                found = Some(self.payloads[i]);
                break;
            }
        }
        if found.is_some() {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        if self.probe.enabled() {
            self.probe.emit(
                now,
                ProbeEvent::TlbLookup {
                    level: self.level,
                    hit: found.is_some(),
                },
            );
        }
        found
    }

    /// Checks residence without updating LRU or counters. This is the
    /// probe the GIPT's TLB-residence bit vector abstracts: a page still
    /// mapped by some TLB must not be evicted (paper §3.2).
    #[inline]
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.keys[self.set_range(vpn)].contains(&vpn.0)
    }

    /// Inserts (or updates) a translation, returning the displaced entry
    /// if a valid one was evicted.
    pub fn insert(&mut self, vpn: Vpn, entry: TlbEntry) -> Option<(Vpn, TlbEntry)> {
        self.insert_at(0, vpn, entry)
    }

    /// [`Tlb::insert`] with an explicit cycle stamp for probe events.
    pub fn insert_at(
        &mut self,
        now: Cycle,
        vpn: Vpn,
        entry: TlbEntry,
    ) -> Option<(Vpn, TlbEntry)> {
        debug_assert_ne!(vpn.0, INVALID_KEY, "VPN collides with the invalid sentinel");
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_range(vpn);
        let (lo, hi) = (range.start, range.end);

        let mut matched = None;
        let mut first_invalid = None;
        for i in lo..hi {
            if self.keys[i] == vpn.0 {
                matched = Some(i);
                break;
            }
            if self.keys[i] == INVALID_KEY && first_invalid.is_none() {
                first_invalid = Some(i);
            }
        }

        let displaced = if let Some(i) = matched {
            self.payloads[i] = entry;
            self.stamps[i] = tick;
            None
        } else {
            // Victim: first empty way, else the LRU way (stamps are
            // unique among valid slots — each tick is handed out once).
            let victim = first_invalid.unwrap_or_else(|| {
                (lo..hi).min_by_key(|&i| self.stamps[i]).expect("non-empty set")
            });
            let displaced = (self.keys[victim] != INVALID_KEY)
                .then(|| (Vpn(self.keys[victim]), self.payloads[victim]));
            self.keys[victim] = vpn.0;
            self.payloads[victim] = entry;
            self.stamps[victim] = tick;
            displaced
        };
        if self.probe.enabled() {
            self.probe.emit(
                now,
                ProbeEvent::TlbInsert {
                    level: self.level,
                    evicted: displaced.is_some(),
                },
            );
        }
        displaced
    }

    /// Invalidates a mapping (TLB shootdown); returns whether it was
    /// present.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        for i in self.set_range(vpn) {
            if self.keys[i] == vpn.0 {
                self.keys[i] = INVALID_KEY;
                return true;
            }
        }
        false
    }

    /// Invalidates everything (e.g. a full flush at context switch).
    pub fn flush(&mut self) {
        self.keys.fill(INVALID_KEY);
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> u32 {
        self.keys.iter().filter(|&&k| k != INVALID_KEY).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(n: u64) -> TlbEntry {
        TlbEntry::physical(Ppn(n), false)
    }

    #[test]
    fn shape_validation() {
        assert!(Tlb::new(0, 1).is_err());
        assert!(Tlb::new(32, 0).is_err());
        assert!(Tlb::new(32, 5).is_err());
        assert!(Tlb::new(32, 32).is_ok());
        assert!(Tlb::new(512, 8).is_ok());
    }

    #[test]
    fn hit_after_insert() {
        let mut t = Tlb::new(32, 32).unwrap();
        assert!(t.lookup(Vpn(1)).is_none());
        t.insert(Vpn(1), entry(9));
        assert_eq!(t.lookup(Vpn(1)), Some(entry(9)));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn lru_eviction_in_full_set() {
        let mut t = Tlb::new(2, 2).unwrap(); // 1 set, 2 ways
        t.insert(Vpn(1), entry(1));
        t.insert(Vpn(2), entry(2));
        t.lookup(Vpn(1)); // 1 becomes MRU
        let evicted = t.insert(Vpn(3), entry(3));
        assert_eq!(evicted.map(|(v, _)| v), Some(Vpn(2)));
        assert!(t.contains(Vpn(1)));
        assert!(!t.contains(Vpn(2)));
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let mut t = Tlb::new(4, 4).unwrap();
        t.insert(Vpn(1), entry(1));
        let displaced = t.insert(Vpn(1), TlbEntry::cache(Cpn(5), false));
        assert!(displaced.is_none());
        assert_eq!(t.lookup(Vpn(1)), Some(TlbEntry::cache(Cpn(5), false)));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn contains_does_not_touch_lru_or_stats() {
        let mut t = Tlb::new(2, 2).unwrap();
        t.insert(Vpn(1), entry(1));
        t.insert(Vpn(2), entry(2));
        assert!(t.contains(Vpn(1)));
        // LRU order unchanged: 1 is still oldest and gets evicted.
        let evicted = t.insert(Vpn(3), entry(3));
        assert_eq!(evicted.map(|(v, _)| v), Some(Vpn(1)));
        assert_eq!(t.hits() + t.misses(), 0);
    }

    #[test]
    fn invalidate_and_flush() {
        let mut t = Tlb::new(8, 8).unwrap();
        t.insert(Vpn(1), entry(1));
        t.insert(Vpn(2), entry(2));
        assert!(t.invalidate(Vpn(1)));
        assert!(!t.invalidate(Vpn(1)));
        assert_eq!(t.occupancy(), 1);
        t.flush();
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn set_indexing_separates_conflicting_vpns() {
        let mut t = Tlb::new(8, 2).unwrap(); // 4 sets
        // VPNs 0 and 4 share a set; 1 goes elsewhere.
        t.insert(Vpn(0), entry(0));
        t.insert(Vpn(4), entry(4));
        t.insert(Vpn(8), entry(8)); // same set, evicts LRU = 0
        assert!(!t.contains(Vpn(0)));
        assert!(t.contains(Vpn(4)));
    }

    #[test]
    fn miss_rate_reporting() {
        let mut t = Tlb::new(4, 4).unwrap();
        assert_eq!(t.miss_rate(), 0.0);
        t.lookup(Vpn(1));
        t.insert(Vpn(1), entry(1));
        t.lookup(Vpn(1));
        assert!((t.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ctlb_entries_carry_cache_addresses() {
        let mut t = Tlb::new(32, 32).unwrap();
        t.insert(Vpn(100), TlbEntry::cache(Cpn(55), false));
        let e = t.lookup(Vpn(100)).unwrap();
        assert_eq!(e.frame, Translation::Cache(Cpn(55)));
        assert!(!e.nc);
    }

    #[test]
    fn one_entry_degenerate_tlb() {
        // 1 set, 1 way: every insert evicts the previous mapping.
        let mut t = Tlb::new(1, 1).unwrap();
        assert!(t.insert(Vpn(1), entry(1)).is_none());
        assert_eq!(
            t.insert(Vpn(2), entry(2)),
            Some((Vpn(1), entry(1))),
            "sole slot is always the victim"
        );
        assert_eq!(t.lookup(Vpn(2)), Some(entry(2)));
        assert!(t.lookup(Vpn(1)).is_none());
        assert!(t.invalidate(Vpn(2)));
        assert_eq!(t.occupancy(), 0);
        // Reuse after invalidate does not report a displacement.
        assert!(t.insert(Vpn(3), entry(3)).is_none());
    }

    #[test]
    fn reinsert_after_invalidate_fills_hole_first() {
        let mut t = Tlb::new(4, 4).unwrap();
        for v in 0..4u64 {
            t.insert(Vpn(v), entry(v));
        }
        t.invalidate(Vpn(2));
        // Set is not full any more: no displacement even though three
        // valid entries are older than the hole.
        assert!(t.insert(Vpn(9), entry(9)).is_none());
        assert_eq!(t.occupancy(), 4);
    }
}

/// Differential tests: the flat SoA implementation against a map-backed
/// reference model (DESIGN.md §15).
#[cfg(test)]
mod differential {
    use super::*;
    use std::collections::BTreeMap;
    use tdc_util::testkit::{assert_equiv, XorShift64};

    /// Map-backed reference TLB with the documented semantics: per-set
    /// LRU with unique stamps, insert-into-hole before eviction.
    struct RefTlb {
        sets: u64,
        ways: usize,
        tick: u64,
        hits: u64,
        misses: u64,
        map: Vec<BTreeMap<u64, (TlbEntry, u64)>>,
    }

    impl RefTlb {
        fn new(entries: u32, ways: u32) -> Self {
            Self {
                sets: (entries / ways) as u64,
                ways: ways as usize,
                tick: 0,
                hits: 0,
                misses: 0,
                map: vec![BTreeMap::new(); (entries / ways) as usize],
            }
        }

        fn set(&self, vpn: u64) -> usize {
            (vpn % self.sets) as usize
        }

        fn lookup(&mut self, vpn: u64) -> Option<TlbEntry> {
            self.tick += 1;
            let tick = self.tick;
            let set = self.set(vpn);
            match self.map[set].get_mut(&vpn) {
                Some((e, s)) => {
                    *s = tick;
                    self.hits += 1;
                    Some(*e)
                }
                None => {
                    self.misses += 1;
                    None
                }
            }
        }

        fn insert(&mut self, vpn: u64, entry: TlbEntry) -> Option<(Vpn, TlbEntry)> {
            self.tick += 1;
            let tick = self.tick;
            let set = self.set(vpn);
            if let Some((e, s)) = self.map[set].get_mut(&vpn) {
                *e = entry;
                *s = tick;
                return None;
            }
            let displaced = if self.map[set].len() == self.ways {
                let (&victim, _) = self
                    .map[set]
                    .iter()
                    .min_by_key(|(_, (_, s))| *s)
                    .expect("full set");
                let (e, _) = self.map[set].remove(&victim).expect("present");
                Some((Vpn(victim), e))
            } else {
                None
            };
            self.map[set].insert(vpn, (entry, tick));
            displaced
        }

        fn invalidate(&mut self, vpn: u64) -> bool {
            let set = self.set(vpn);
            self.map[set].remove(&vpn).is_some()
        }

        fn flush(&mut self) {
            for s in &mut self.map {
                s.clear();
            }
        }

        fn contains(&self, vpn: u64) -> bool {
            self.map[self.set(vpn)].contains_key(&vpn)
        }

        fn occupancy(&self) -> u32 {
            self.map.iter().map(|s| s.len() as u32).sum()
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Lookup(u64),
        Insert(u64, u64),
        Invalidate(u64),
        Contains(u64),
        Flush,
    }

    fn payload(raw: u64) -> TlbEntry {
        if raw.is_multiple_of(3) {
            TlbEntry::cache(Cpn(raw), raw.is_multiple_of(5))
        } else {
            TlbEntry::physical(Ppn(raw), raw.is_multiple_of(5))
        }
    }

    fn replay(entries: u32, ways: u32) -> impl Fn(&[Op]) -> Result<(), String> {
        move |ops: &[Op]| {
            let mut flat = Tlb::new(entries, ways).expect("valid shape");
            let mut reference = RefTlb::new(entries, ways);
            for (i, op) in ops.iter().enumerate() {
                let err = |what: &str, a: String, b: String| {
                    Err(format!("step {i} {op:?}: {what}: flat={a} ref={b}"))
                };
                match *op {
                    Op::Lookup(v) => {
                        let (a, b) = (flat.lookup(Vpn(v)), reference.lookup(v));
                        if a != b {
                            return err("lookup", format!("{a:?}"), format!("{b:?}"));
                        }
                    }
                    Op::Insert(v, p) => {
                        let (a, b) =
                            (flat.insert(Vpn(v), payload(p)), reference.insert(v, payload(p)));
                        if a != b {
                            return err("displaced", format!("{a:?}"), format!("{b:?}"));
                        }
                    }
                    Op::Invalidate(v) => {
                        let (a, b) = (flat.invalidate(Vpn(v)), reference.invalidate(v));
                        if a != b {
                            return err("invalidate", format!("{a}"), format!("{b}"));
                        }
                    }
                    Op::Contains(v) => {
                        let (a, b) = (flat.contains(Vpn(v)), reference.contains(v));
                        if a != b {
                            return err("contains", format!("{a}"), format!("{b}"));
                        }
                    }
                    Op::Flush => {
                        flat.flush();
                        reference.flush();
                    }
                }
                if flat.occupancy() != reference.occupancy() {
                    return err(
                        "occupancy",
                        flat.occupancy().to_string(),
                        reference.occupancy().to_string(),
                    );
                }
                if (flat.hits(), flat.misses()) != (reference.hits, reference.misses) {
                    return err(
                        "hit/miss counters",
                        format!("{}/{}", flat.hits(), flat.misses()),
                        format!("{}/{}", reference.hits, reference.misses),
                    );
                }
            }
            Ok(())
        }
    }

    /// Trace family 1: warm working-set loop (high hit rate, stable
    /// LRU churn within capacity).
    fn warm_loop_trace(rng: &mut XorShift64, len: usize, working_set: u64) -> Vec<Op> {
        (0..len)
            .map(|_| {
                let v = rng.below(working_set);
                if rng.chance(75) {
                    Op::Lookup(v)
                } else {
                    Op::Insert(v, rng.next_u64() % 1000)
                }
            })
            .collect()
    }

    /// Trace family 2: capacity thrash (VPN space far beyond reach;
    /// every set constantly evicts).
    fn thrash_trace(rng: &mut XorShift64, len: usize) -> Vec<Op> {
        (0..len)
            .map(|_| {
                let v = rng.below(1 << 20);
                match rng.below(3) {
                    0 => Op::Lookup(v),
                    1 => Op::Insert(v, rng.next_u64() % 1000),
                    _ => Op::Contains(v),
                }
            })
            .collect()
    }

    /// Trace family 3: shootdown storm (invalidate/flush heavy, holes
    /// constantly opening and refilling).
    fn shootdown_trace(rng: &mut XorShift64, len: usize) -> Vec<Op> {
        (0..len)
            .map(|_| {
                let v = rng.below(256);
                match rng.below(10) {
                    0 => Op::Flush,
                    1..=3 => Op::Invalidate(v),
                    4..=6 => Op::Insert(v, rng.next_u64() % 1000),
                    _ => Op::Lookup(v),
                }
            })
            .collect()
    }

    #[test]
    fn warm_loop_family_matches_reference() {
        for seed in 1..=4u64 {
            let mut rng = XorShift64::new(seed);
            let ops = warm_loop_trace(&mut rng, 4000, 24);
            assert_equiv("tlb/warm-loop(32w32)", &ops, replay(32, 32));
        }
    }

    #[test]
    fn thrash_family_matches_reference() {
        for seed in 10..=13u64 {
            let mut rng = XorShift64::new(seed);
            let ops = thrash_trace(&mut rng, 4000);
            assert_equiv("tlb/thrash(512w8)", &ops, replay(512, 8));
            let ops = thrash_trace(&mut rng, 2000);
            assert_equiv("tlb/thrash(8w2)", &ops, replay(8, 2));
        }
    }

    #[test]
    fn shootdown_family_matches_reference() {
        for seed in 20..=23u64 {
            let mut rng = XorShift64::new(seed);
            let ops = shootdown_trace(&mut rng, 4000);
            assert_equiv("tlb/shootdown(32w32)", &ops, replay(32, 32));
            let ops = shootdown_trace(&mut rng, 1000);
            assert_equiv("tlb/shootdown(1w1)", &ops, replay(1, 1));
        }
    }
}
