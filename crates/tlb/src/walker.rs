//! Page-table walk address generation.
//!
//! A 4-level x86-64-style radix walk performs four dependent memory
//! reads, one PTE per level. The simulator charges the walk's cost by
//! actually issuing these reads through the cache hierarchy, so walks
//! exhibit the real locality pattern: adjacent virtual pages share all
//! upper-level PTEs and usually the leaf PTE cache line too, which is
//! why most walks are cheap and only TLB misses to far-away pages pay
//! full memory latency.

use tdc_util::{PAddr, Vpn};

/// Number of radix levels (x86-64 4-level paging).
pub const WALK_LEVELS: usize = 4;

/// Bits of VPN consumed per level.
const BITS_PER_LEVEL: u32 = 9;
/// Size of one page-table page, in bytes.
const TABLE_BYTES: u64 = 4096;
/// Bytes per PTE.
const PTE_BYTES: u64 = 8;

/// Base of the physical region that holds page-table pages. Placed high
/// so it never collides with the per-ASID data regions.
const PT_REGION_BASE: u64 = 0x7000_0000_0000;

/// Returns the physical addresses of the four dependent PTE reads for a
/// walk of `vpn` in address space `asid`, root-to-leaf order.
///
/// Table placement is a deterministic function of (asid, level, index
/// prefix), so two walks that share a VPN prefix read the *same* PTE
/// addresses — upper levels and nearby leaves therefore hit in the
/// on-die caches exactly as they would with real page tables.
///
/// # Examples
///
/// ```
/// use tdc_tlb::{walk_addresses, WALK_LEVELS};
/// use tdc_util::Vpn;
/// let addrs = walk_addresses(0, Vpn(0x12345));
/// assert_eq!(addrs.len(), WALK_LEVELS);
/// ```
pub fn walk_addresses(asid: u32, vpn: Vpn) -> [PAddr; WALK_LEVELS] {
    let mut out = [PAddr(0); WALK_LEVELS];
    for (level, slot) in out.iter_mut().enumerate() {
        // Index consumed at this level (level 0 = root).
        let shift = BITS_PER_LEVEL * (WALK_LEVELS - 1 - level) as u32;
        let index = (vpn.0 >> shift) & ((1 << BITS_PER_LEVEL) - 1);
        // Identify the table page by the prefix above this level.
        let prefix = vpn.0 >> (shift + BITS_PER_LEVEL).min(63);
        let table_id = hash3(asid as u64, level as u64, prefix);
        // Table pages live in a dedicated region; spread tables over
        // 2^24 slots.
        let table_base = PT_REGION_BASE + (table_id & 0xFF_FFFF) * TABLE_BYTES;
        *slot = PAddr(table_base + index * PTE_BYTES);
    }
    out
}

fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(c);
    x ^= x >> 31;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 29)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walks_are_deterministic() {
        assert_eq!(walk_addresses(1, Vpn(42)), walk_addresses(1, Vpn(42)));
    }

    #[test]
    fn adjacent_vpns_share_upper_levels() {
        let a = walk_addresses(0, Vpn(0x1000));
        let b = walk_addresses(0, Vpn(0x1001));
        // Root + two middle levels identical.
        assert_eq!(a[0], b[0]);
        assert_eq!(a[1], b[1]);
        assert_eq!(a[2], b[2]);
        // Leaf PTEs are adjacent (same cache line, 8B apart).
        assert_eq!(b[3].0 - a[3].0, PTE_BYTES);
    }

    #[test]
    fn distant_vpns_diverge_at_leaf_table() {
        let a = walk_addresses(0, Vpn(0x1000));
        let b = walk_addresses(0, Vpn(0x1000 + (1 << 9)));
        assert_eq!(a[0], b[0]);
        assert_ne!(a[3].0 & !(TABLE_BYTES - 1), b[3].0 & !(TABLE_BYTES - 1));
    }

    #[test]
    fn different_asids_use_different_tables() {
        let a = walk_addresses(0, Vpn(7));
        let b = walk_addresses(1, Vpn(7));
        assert_ne!(a[0], b[0]);
    }

    #[test]
    fn addresses_stay_in_pt_region() {
        for vpn in [0u64, 1, 0xFFFF, 0xFFFF_FFFF] {
            for a in walk_addresses(3, Vpn(vpn)) {
                assert!(a.0 >= PT_REGION_BASE);
            }
        }
    }
}
