//! Page-table entries and per-process page tables.

use std::collections::BTreeMap;
use tdc_util::{Cpn, Ppn, Vpn};

/// Where a virtual page currently resolves to.
///
/// In the tagless design the PTE's frame field is *overwritten* with the
/// cache address while the page is resident in the DRAM cache (VC=1);
/// the original physical address is recoverable only through the GIPT
/// (paper §3.2). This enum models that faithfully: a PTE holds exactly
/// one of the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Translation {
    /// Conventional mapping to off-package physical memory (VC=0).
    Physical(Ppn),
    /// Mapping into the in-package DRAM cache (VC=1).
    Cache(Cpn),
}

impl Translation {
    /// Whether this is a cache (VC=1) mapping.
    pub fn is_cached(&self) -> bool {
        matches!(self, Translation::Cache(_))
    }
}

/// A page-table entry with the paper's extra flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Current frame mapping; `Translation::Cache` implies VC=1.
    pub frame: Translation,
    /// Non-Cacheable bit: the page bypasses the DRAM cache (but not the
    /// on-die SRAM caches).
    pub nc: bool,
    /// Pending-Update bit: a cache fill for this page is in flight;
    /// concurrent TLB misses must wait instead of issuing a duplicate
    /// fill.
    pub pu: bool,
    /// Dirty bit (the page has been written since it was loaded/filled).
    pub dirty: bool,
    /// Accessed bit.
    pub accessed: bool,
}

impl Pte {
    /// A fresh entry mapping to physical memory.
    pub fn physical(ppn: Ppn) -> Self {
        Self {
            frame: Translation::Physical(ppn),
            nc: false,
            pu: false,
            dirty: false,
            accessed: false,
        }
    }

    /// VC bit: whether the page is valid in the DRAM cache.
    pub fn valid_in_cache(&self) -> bool {
        self.frame.is_cached()
    }
}

/// A per-process page table with demand allocation of physical frames.
///
/// Physical frames are handed out by a deterministic per-process
/// allocator: process `asid`'s pages land in a contiguous region of the
/// off-package physical space, scattered page-by-page with a multiplicative
/// hash so that consecutive virtual pages do not map to consecutive
/// physical pages (as after real OS fragmentation). This matters for the
/// set-indexing behaviour of the SRAM-tag baseline.
#[derive(Debug, Clone)]
pub struct PageTable {
    asid: u32,
    entries: BTreeMap<Vpn, Pte>,
    next_seq: u64,
}

/// Number of physical pages reserved per address space (8GB / 4KB / 4
/// processes would be 512K; we give each space a 2M-page = 8GB window
/// wrapped modulo the region so footprints never collide between
/// processes sharing off-package memory in multi-programmed runs).
const PAGES_PER_ASID_REGION: u64 = 1 << 21;

impl PageTable {
    /// Creates an empty page table for address-space `asid`.
    pub fn new(asid: u32) -> Self {
        Self {
            asid,
            entries: BTreeMap::new(),
            next_seq: 0,
        }
    }

    /// The address-space identifier.
    pub fn asid(&self) -> u32 {
        self.asid
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a PTE without faulting.
    pub fn get(&self, vpn: Vpn) -> Option<&Pte> {
        self.entries.get(&vpn)
    }

    /// Mutable lookup without faulting.
    pub fn get_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        self.entries.get_mut(&vpn)
    }

    /// Returns the PTE for `vpn`, allocating a physical frame on first
    /// touch (demand paging).
    pub fn translate_or_fault(&mut self, vpn: Vpn) -> &mut Pte {
        let asid = self.asid;
        let seq = &mut self.next_seq;
        // Demand paging allocates the PTE exactly once per page, on
        // first touch; warm re-translations land on the occupied entry.
        // tdc-lint: allow(hot-path-alloc)
        self.entries.entry(vpn).or_insert_with(|| {
            let s = *seq;
            *seq += 1;
            Pte::physical(Self::frame_for(asid, s))
        })
    }

    /// Deterministic scattered frame assignment.
    fn frame_for(asid: u32, seq: u64) -> Ppn {
        let region_base = asid as u64 * PAGES_PER_ASID_REGION;
        // Odd multiplier => bijection modulo the power-of-two region.
        let scattered = seq.wrapping_mul(0x9E37_79B9) & (PAGES_PER_ASID_REGION - 1);
        Ppn(region_base + scattered)
    }

    /// Marks a page non-cacheable (used by the §5.4 profiling study and
    /// for cross-process shared pages).
    ///
    /// # Panics
    ///
    /// Panics if the page is currently cached (the OS must evict before
    /// re-flagging).
    pub fn set_non_cacheable(&mut self, vpn: Vpn) {
        let pte = self.translate_or_fault(vpn);
        assert!(
            !pte.valid_in_cache(),
            "cannot flag a cached page non-cacheable"
        );
        pte.nc = true;
    }

    /// Maps `vpn` to an explicit (possibly shared) physical frame, used
    /// for pages shared across address spaces.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped.
    pub fn map_shared(&mut self, vpn: Vpn, ppn: Ppn) {
        let old = self.entries.insert(vpn, Pte::physical(ppn));
        assert!(old.is_none(), "page already mapped");
    }

    /// Iterates over all mapped `(vpn, pte)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vpn, &Pte)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdc_util::Cpn;

    #[test]
    fn demand_allocation_is_stable() {
        let mut pt = PageTable::new(1);
        let p1 = pt.translate_or_fault(Vpn(10)).frame;
        let p2 = pt.translate_or_fault(Vpn(10)).frame;
        assert_eq!(p1, p2);
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn distinct_vpns_get_distinct_frames() {
        let mut pt = PageTable::new(0);
        let mut seen = std::collections::HashSet::new();
        for v in 0..10_000u64 {
            let Translation::Physical(ppn) = pt.translate_or_fault(Vpn(v)).frame else {
                panic!("fresh page must be physical");
            };
            assert!(seen.insert(ppn), "duplicate frame {ppn:?}");
        }
    }

    #[test]
    fn frames_are_scattered_not_sequential() {
        let mut pt = PageTable::new(0);
        let Translation::Physical(a) = pt.translate_or_fault(Vpn(0)).frame else {
            unreachable!()
        };
        let Translation::Physical(b) = pt.translate_or_fault(Vpn(1)).frame else {
            unreachable!()
        };
        assert_ne!(b.0, a.0 + 1, "consecutive VPNs must not be contiguous");
    }

    #[test]
    fn asid_regions_do_not_overlap() {
        let mut pt0 = PageTable::new(0);
        let mut pt1 = PageTable::new(1);
        let Translation::Physical(a) = pt0.translate_or_fault(Vpn(5)).frame else {
            unreachable!()
        };
        let Translation::Physical(b) = pt1.translate_or_fault(Vpn(5)).frame else {
            unreachable!()
        };
        assert!(a.0 < PAGES_PER_ASID_REGION);
        assert!(b.0 >= PAGES_PER_ASID_REGION);
    }

    #[test]
    fn vc_bit_tracks_frame_kind() {
        let mut pte = Pte::physical(Ppn(3));
        assert!(!pte.valid_in_cache());
        pte.frame = Translation::Cache(Cpn(0));
        assert!(pte.valid_in_cache());
    }

    #[test]
    fn nc_flagging() {
        let mut pt = PageTable::new(0);
        pt.set_non_cacheable(Vpn(7));
        assert!(pt.get(Vpn(7)).unwrap().nc);
    }

    #[test]
    #[should_panic(expected = "cannot flag a cached page")]
    fn nc_on_cached_page_panics() {
        let mut pt = PageTable::new(0);
        pt.translate_or_fault(Vpn(7)).frame = Translation::Cache(Cpn(1));
        pt.set_non_cacheable(Vpn(7));
    }
}
