//! Page-table entries and per-process page tables.

use tdc_util::flat::FlatMap;
use tdc_util::{Cpn, Ppn, Vpn};

/// Where a virtual page currently resolves to.
///
/// In the tagless design the PTE's frame field is *overwritten* with the
/// cache address while the page is resident in the DRAM cache (VC=1);
/// the original physical address is recoverable only through the GIPT
/// (paper §3.2). This enum models that faithfully: a PTE holds exactly
/// one of the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Translation {
    /// Conventional mapping to off-package physical memory (VC=0).
    Physical(Ppn),
    /// Mapping into the in-package DRAM cache (VC=1).
    Cache(Cpn),
}

impl Translation {
    /// Whether this is a cache (VC=1) mapping.
    pub fn is_cached(&self) -> bool {
        matches!(self, Translation::Cache(_))
    }
}

/// A page-table entry with the paper's extra flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pte {
    /// Current frame mapping; `Translation::Cache` implies VC=1.
    pub frame: Translation,
    /// Non-Cacheable bit: the page bypasses the DRAM cache (but not the
    /// on-die SRAM caches).
    pub nc: bool,
    /// Pending-Update bit: a cache fill for this page is in flight;
    /// concurrent TLB misses must wait instead of issuing a duplicate
    /// fill.
    pub pu: bool,
    /// Dirty bit (the page has been written since it was loaded/filled).
    pub dirty: bool,
    /// Accessed bit.
    pub accessed: bool,
}

impl Pte {
    /// A fresh entry mapping to physical memory.
    pub fn physical(ppn: Ppn) -> Self {
        Self {
            frame: Translation::Physical(ppn),
            nc: false,
            pu: false,
            dirty: false,
            accessed: false,
        }
    }

    /// VC bit: whether the page is valid in the DRAM cache.
    pub fn valid_in_cache(&self) -> bool {
        self.frame.is_cached()
    }
}

/// A per-process page table with demand allocation of physical frames.
///
/// Physical frames are handed out by a deterministic per-process
/// allocator: process `asid`'s pages land in a contiguous region of the
/// off-package physical space, scattered page-by-page with a multiplicative
/// hash so that consecutive virtual pages do not map to consecutive
/// physical pages (as after real OS fragmentation). This matters for the
/// set-indexing behaviour of the SRAM-tag baseline.
///
/// Storage is flat (DESIGN.md §15): PTEs live in a dense `Vec` in
/// first-touch order, reached through an open-addressed VPN index
/// ([`FlatMap`]) — the `BTreeMap` this replaced is kept as the
/// `#[cfg(test)]` reference model below. Frame assignment depends only
/// on the first-touch *sequence*, which both layouts share, so the
/// switch cannot move a single page.
#[derive(Debug, Clone)]
pub struct PageTable {
    asid: u32,
    /// `vpn → dense slot` index; the only structure probed on lookups.
    index: FlatMap<u32>,
    /// PTE storage, dense in first-touch order.
    ptes: Vec<Pte>,
    /// VPN per dense slot (for iteration and diagnostics).
    vpns: Vec<Vpn>,
    next_seq: u64,
}

/// Number of physical pages reserved per address space (8GB / 4KB / 4
/// processes would be 512K; we give each space a 2M-page = 8GB window
/// wrapped modulo the region so footprints never collide between
/// processes sharing off-package memory in multi-programmed runs).
const PAGES_PER_ASID_REGION: u64 = 1 << 21;

impl PageTable {
    /// Creates an empty page table for address-space `asid`.
    pub fn new(asid: u32) -> Self {
        Self {
            asid,
            index: FlatMap::new(),
            ptes: Vec::new(),
            vpns: Vec::new(),
            next_seq: 0,
        }
    }

    /// The address-space identifier.
    pub fn asid(&self) -> u32 {
        self.asid
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.ptes.len()
    }

    /// Whether no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.ptes.is_empty()
    }

    /// Looks up a PTE without faulting.
    #[inline]
    pub fn get(&self, vpn: Vpn) -> Option<&Pte> {
        self.index.get(vpn.0).map(|i| &self.ptes[i as usize])
    }

    /// Mutable lookup without faulting.
    #[inline]
    pub fn get_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        self.index.get(vpn.0).map(|i| &mut self.ptes[i as usize])
    }

    /// Returns the PTE for `vpn`, allocating a physical frame on first
    /// touch (demand paging).
    #[inline]
    pub fn translate_or_fault(&mut self, vpn: Vpn) -> &mut Pte {
        if let Some(i) = self.index.get(vpn.0) {
            return &mut self.ptes[i as usize];
        }
        self.fault_in(vpn, None)
    }

    /// Demand paging allocates the PTE exactly once per page, on first
    /// touch; warm re-translations land on the occupied entry above.
    fn fault_in(&mut self, vpn: Vpn, frame: Option<Ppn>) -> &mut Pte {
        let ppn = frame.unwrap_or_else(|| {
            let s = self.next_seq;
            self.next_seq += 1;
            Self::frame_for(self.asid, s)
        });
        let slot = self.ptes.len();
        debug_assert!(slot <= u32::MAX as usize, "page table exceeds u32 slots");
        self.ptes.push(Pte::physical(ppn)); // tdc-lint: allow(hot-path-alloc) first touch only
        self.vpns.push(vpn); // tdc-lint: allow(hot-path-alloc) first touch only
        // tdc-lint: allow(cast-truncation, hot-path-alloc) slot bound debug_assert-pinned; first touch only
        let old = self.index.insert(vpn.0, slot as u32);
        debug_assert!(old.is_none(), "VPN {vpn:?} double-faulted");
        &mut self.ptes[slot]
    }

    /// Deterministic scattered frame assignment.
    fn frame_for(asid: u32, seq: u64) -> Ppn {
        let region_base = asid as u64 * PAGES_PER_ASID_REGION;
        // Odd multiplier => bijection modulo the power-of-two region.
        let scattered = seq.wrapping_mul(0x9E37_79B9) & (PAGES_PER_ASID_REGION - 1);
        Ppn(region_base + scattered)
    }

    /// Marks a page non-cacheable (used by the §5.4 profiling study and
    /// for cross-process shared pages).
    ///
    /// # Panics
    ///
    /// Panics if the page is currently cached (the OS must evict before
    /// re-flagging).
    pub fn set_non_cacheable(&mut self, vpn: Vpn) {
        let pte = self.translate_or_fault(vpn);
        assert!(
            !pte.valid_in_cache(),
            "cannot flag a cached page non-cacheable"
        );
        pte.nc = true;
    }

    /// Maps `vpn` to an explicit (possibly shared) physical frame, used
    /// for pages shared across address spaces.
    ///
    /// # Panics
    ///
    /// Panics if the page is already mapped.
    pub fn map_shared(&mut self, vpn: Vpn, ppn: Ppn) {
        assert!(!self.index.contains_key(vpn.0), "page already mapped");
        self.fault_in(vpn, Some(ppn));
    }

    /// Iterates over all mapped `(vpn, pte)` pairs in VPN order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vpn, &Pte)> {
        let mut order: Vec<usize> = (0..self.vpns.len()).collect();
        order.sort_by_key(|&i| self.vpns[i]);
        order.into_iter().map(move |i| (&self.vpns[i], &self.ptes[i]))
    }
}

impl std::ops::Index<Vpn> for PageTable {
    type Output = Pte;

    /// Panics if `vpn` is unmapped (use [`PageTable::get`] to probe).
    fn index(&self, vpn: Vpn) -> &Pte {
        self.get(vpn)
            // tdc-lint: allow(panic-in-lib) documented panicking accessor
            .unwrap_or_else(|| panic!("PageTable: {vpn:?} not mapped"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdc_util::Cpn;

    #[test]
    fn demand_allocation_is_stable() {
        let mut pt = PageTable::new(1);
        let p1 = pt.translate_or_fault(Vpn(10)).frame;
        let p2 = pt.translate_or_fault(Vpn(10)).frame;
        assert_eq!(p1, p2);
        assert_eq!(pt.len(), 1);
    }

    #[test]
    fn distinct_vpns_get_distinct_frames() {
        let mut pt = PageTable::new(0);
        let mut seen = std::collections::HashSet::new();
        for v in 0..10_000u64 {
            let Translation::Physical(ppn) = pt.translate_or_fault(Vpn(v)).frame else {
                panic!("fresh page must be physical");
            };
            assert!(seen.insert(ppn), "duplicate frame {ppn:?}");
        }
    }

    #[test]
    fn frames_are_scattered_not_sequential() {
        let mut pt = PageTable::new(0);
        let Translation::Physical(a) = pt.translate_or_fault(Vpn(0)).frame else {
            unreachable!()
        };
        let Translation::Physical(b) = pt.translate_or_fault(Vpn(1)).frame else {
            unreachable!()
        };
        assert_ne!(b.0, a.0 + 1, "consecutive VPNs must not be contiguous");
    }

    #[test]
    fn asid_regions_do_not_overlap() {
        let mut pt0 = PageTable::new(0);
        let mut pt1 = PageTable::new(1);
        let Translation::Physical(a) = pt0.translate_or_fault(Vpn(5)).frame else {
            unreachable!()
        };
        let Translation::Physical(b) = pt1.translate_or_fault(Vpn(5)).frame else {
            unreachable!()
        };
        assert!(a.0 < PAGES_PER_ASID_REGION);
        assert!(b.0 >= PAGES_PER_ASID_REGION);
    }

    #[test]
    fn vc_bit_tracks_frame_kind() {
        let mut pte = Pte::physical(Ppn(3));
        assert!(!pte.valid_in_cache());
        pte.frame = Translation::Cache(Cpn(0));
        assert!(pte.valid_in_cache());
    }

    #[test]
    fn nc_flagging() {
        let mut pt = PageTable::new(0);
        pt.set_non_cacheable(Vpn(7));
        assert!(pt.get(Vpn(7)).unwrap().nc);
    }

    #[test]
    #[should_panic(expected = "cannot flag a cached page")]
    fn nc_on_cached_page_panics() {
        let mut pt = PageTable::new(0);
        pt.translate_or_fault(Vpn(7)).frame = Translation::Cache(Cpn(1));
        pt.set_non_cacheable(Vpn(7));
    }

    #[test]
    fn index_accessor_and_sorted_iteration() {
        let mut pt = PageTable::new(0);
        // Touch out of order; iteration must come back VPN-sorted (the
        // order the old BTreeMap guaranteed).
        for v in [9u64, 2, 500, 41] {
            pt.translate_or_fault(Vpn(v));
        }
        assert_eq!(pt[Vpn(9)], *pt.get(Vpn(9)).unwrap());
        let order: Vec<u64> = pt.iter().map(|(v, _)| v.0).collect();
        assert_eq!(order, vec![2, 9, 41, 500]);
    }

    #[test]
    #[should_panic(expected = "not mapped")]
    fn index_accessor_panics_on_unmapped() {
        let pt = PageTable::new(0);
        let _ = pt[Vpn(3)];
    }

    #[test]
    #[should_panic(expected = "page already mapped")]
    fn map_shared_over_mapped_page_panics() {
        let mut pt = PageTable::new(0);
        pt.translate_or_fault(Vpn(1));
        pt.map_shared(Vpn(1), Ppn(77));
    }
}

/// Differential tests: the flat page table against the original
/// `BTreeMap`-backed model (DESIGN.md §15). Frame assignment must match
/// *exactly* — it feeds the SRAM-tag baseline's set indexing, so a
/// single diverging PPN would shift figure bytes.
#[cfg(test)]
mod differential {
    use super::*;
    use std::collections::BTreeMap;
    use tdc_util::testkit::{assert_equiv, XorShift64};

    /// The pre-refactor implementation, verbatim in behaviour.
    struct RefPageTable {
        asid: u32,
        entries: BTreeMap<Vpn, Pte>,
        next_seq: u64,
    }

    impl RefPageTable {
        fn new(asid: u32) -> Self {
            Self {
                asid,
                entries: BTreeMap::new(),
                next_seq: 0,
            }
        }

        fn translate_or_fault(&mut self, vpn: Vpn) -> &mut Pte {
            let asid = self.asid;
            let seq = &mut self.next_seq;
            self.entries.entry(vpn).or_insert_with(|| {
                let s = *seq;
                *seq += 1;
                let region_base = asid as u64 * PAGES_PER_ASID_REGION;
                let scattered = s.wrapping_mul(0x9E37_79B9) & (PAGES_PER_ASID_REGION - 1);
                Pte::physical(Ppn(region_base + scattered))
            })
        }

        fn map_shared(&mut self, vpn: Vpn, ppn: Ppn) -> bool {
            if self.entries.contains_key(&vpn) {
                return false;
            }
            self.entries.insert(vpn, Pte::physical(ppn));
            true
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        /// Demand-fault (or re-translate) a page, then flip some PTE
        /// bits so state beyond the frame is exercised too.
        Touch(u64, bool, bool),
        /// Probe without faulting.
        Get(u64),
        /// Map an explicit shared frame (skipped if already mapped, so
        /// traces never hit the documented panic).
        Share(u64, u64),
        /// Flip a cached page's mapping to a cache frame and back, as
        /// fill/evict do.
        CacheFlip(u64),
    }

    fn replay(ops: &[Op]) -> Result<(), String> {
        let mut flat = PageTable::new(3);
        let mut reference = RefPageTable::new(3);
        for (i, op) in ops.iter().enumerate() {
            match *op {
                Op::Touch(v, dirty, accessed) => {
                    let a = flat.translate_or_fault(Vpn(v));
                    a.dirty |= dirty;
                    a.accessed |= accessed;
                    let a = *a;
                    let b = reference.translate_or_fault(Vpn(v));
                    b.dirty |= dirty;
                    b.accessed |= accessed;
                    if a != *b {
                        return Err(format!(
                            "step {i} {op:?}: pte mismatch flat={a:?} ref={b:?}"
                        ));
                    }
                }
                Op::Get(v) => {
                    let a = flat.get(Vpn(v)).copied();
                    let b = reference.entries.get(&Vpn(v)).copied();
                    if a != b {
                        return Err(format!(
                            "step {i} {op:?}: get mismatch flat={a:?} ref={b:?}"
                        ));
                    }
                }
                Op::Share(v, p) => {
                    if reference.map_shared(Vpn(v), Ppn(p)) {
                        flat.map_shared(Vpn(v), Ppn(p));
                    }
                }
                Op::CacheFlip(v) => {
                    for pte in [
                        flat.get_mut(Vpn(v)),
                        reference.entries.get_mut(&Vpn(v)),
                    ]
                    .into_iter()
                    .flatten()
                    {
                        pte.frame = match pte.frame {
                            Translation::Physical(p) => Translation::Cache(Cpn(p.0 % 1024)),
                            Translation::Cache(c) => {
                                Translation::Physical(Ppn(c.0))
                            }
                        };
                    }
                }
            }
            if flat.len() != reference.entries.len() {
                return Err(format!(
                    "step {i} {op:?}: len mismatch flat={} ref={}",
                    flat.len(),
                    reference.entries.len()
                ));
            }
        }
        // Full-state sweep: identical mapped set in identical order.
        let a: Vec<(u64, Pte)> = flat.iter().map(|(v, p)| (v.0, *p)).collect();
        let b: Vec<(u64, Pte)> = reference.entries.iter().map(|(v, p)| (v.0, *p)).collect();
        if a != b {
            return Err(format!(
                "final sweep mismatch: flat has {} pages, ref {}",
                a.len(),
                b.len()
            ));
        }
        Ok(())
    }

    /// Trace family 1: streaming first-touch (mostly-new VPNs, the
    /// demand-paging order that pins frame assignment).
    fn streaming_trace(rng: &mut XorShift64, len: usize) -> Vec<Op> {
        (0..len)
            .map(|i| Op::Touch(i as u64 * 3 + rng.below(3), rng.chance(20), true))
            .collect()
    }

    /// Trace family 2: skewed re-touch with PTE bit churn and cache
    /// flips (warm translations must never re-allocate).
    fn retouch_trace(rng: &mut XorShift64, len: usize) -> Vec<Op> {
        (0..len)
            .map(|_| {
                let v = rng.below(200);
                match rng.below(4) {
                    0 => Op::Get(v),
                    1 => Op::CacheFlip(v),
                    _ => Op::Touch(v, rng.chance(50), rng.chance(50)),
                }
            })
            .collect()
    }

    /// Trace family 3: shared mappings interleaved with demand faults
    /// (the multi-process consolidation shape).
    fn shared_trace(rng: &mut XorShift64, len: usize) -> Vec<Op> {
        (0..len)
            .map(|_| {
                let v = rng.below(300);
                if rng.chance(25) {
                    Op::Share(v, 0xF00_000 + rng.below(64))
                } else {
                    Op::Touch(v, false, rng.chance(30))
                }
            })
            .collect()
    }

    #[test]
    fn streaming_family_matches_reference() {
        for seed in 1..=4u64 {
            let mut rng = XorShift64::new(seed);
            let ops = streaming_trace(&mut rng, 3000);
            assert_equiv("page_table/streaming", &ops, replay);
        }
    }

    #[test]
    fn retouch_family_matches_reference() {
        for seed in 10..=13u64 {
            let mut rng = XorShift64::new(seed);
            let ops = retouch_trace(&mut rng, 3000);
            assert_equiv("page_table/retouch", &ops, replay);
        }
    }

    #[test]
    fn shared_family_matches_reference() {
        for seed in 20..=23u64 {
            let mut rng = XorShift64::new(seed);
            let ops = shared_trace(&mut rng, 2000);
            assert_equiv("page_table/shared", &ops, replay);
        }
    }
}
