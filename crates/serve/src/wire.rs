//! The serve wire format: the versioned JSON envelope every endpoint
//! speaks, and the sweep-request document.
//!
//! Everything on the wire is hand-rolled [`tdc_util::json`] — no serde,
//! same as the `results/` artifacts — and the envelope shape is pinned
//! three ways: the constants below, the DESIGN.md §12 prose (kept in
//! sync both directions by the `wire-schema` lint rule), and the golden
//! request/response files under `tests/golden/`.

use tdc_util::Json;

/// Version stamp carried by every envelope and required on every
/// request document; bump on any incompatible wire change.
pub const WIRE_VERSION: u64 = 1;

/// Top-level fields of the `serve-envelope` response object, in wire
/// order. The `wire-schema` lint rule keeps this list and DESIGN.md §12
/// agreeing in both directions.
pub const WIRE_FIELDS: [&str; 5] = ["format_version", "endpoint", "status", "data", "error"];

/// Builds the response envelope: `data` for 2xx payloads, `error` as a
/// human-readable reason otherwise (the unused side is `null`).
pub fn envelope(endpoint: &str, status: u16, data: Json, error: Option<&str>) -> Json {
    Json::obj([
        ("format_version", Json::from(WIRE_VERSION)),
        ("endpoint", Json::from(endpoint)),
        ("status", Json::from(u64::from(status))),
        ("data", data),
        (
            "error",
            match error {
                Some(msg) => Json::from(msg),
                None => Json::Null,
            },
        ),
    ])
}

/// A parsed `POST /sweep` request: the cells to materialize, as
/// explicit cache keys and/or whole figure ids.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SweepRequest {
    /// Explicit job cache keys (the same strings `tdc shard` hashes).
    pub keys: Vec<String>,
    /// Figure ids to expand into their full cell sets.
    pub figures: Vec<String>,
}

/// Parses and validates a sweep-request document. Rejects a missing or
/// mismatched `format_version`, mistyped fields, and requests naming
/// nothing to do.
pub fn parse_sweep(doc: &Json) -> Result<SweepRequest, String> {
    let version = doc
        .get("format_version")
        .and_then(Json::as_u64)
        .ok_or("request is missing integer 'format_version'")?;
    if version != WIRE_VERSION {
        return Err(format!(
            "unsupported format_version {version} (this server speaks {WIRE_VERSION})"
        ));
    }
    let strings = |name: &str| -> Result<Vec<String>, String> {
        match doc.get(name) {
            None | Some(Json::Null) => Ok(Vec::new()),
            Some(Json::Arr(items)) => items
                .iter()
                .map(|j| {
                    j.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("'{name}' must contain only strings"))
                })
                .collect(),
            Some(_) => Err(format!("'{name}' must be an array of strings")),
        }
    };
    let req = SweepRequest {
        keys: strings("keys")?,
        figures: strings("figures")?,
    };
    if req.keys.is_empty() && req.figures.is_empty() {
        return Err("request names no 'keys' and no 'figures'".to_string());
    }
    Ok(req)
}

/// Builds a sweep-request document (the client side of
/// [`parse_sweep`]).
pub fn sweep_request(keys: &[String], figures: &[String]) -> Json {
    Json::obj([
        ("format_version", Json::from(WIRE_VERSION)),
        (
            "keys",
            Json::Arr(keys.iter().map(|k| Json::from(k.as_str())).collect()),
        ),
        (
            "figures",
            Json::Arr(figures.iter().map(|f| Json::from(f.as_str())).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_shape_matches_wire_fields() {
        let env = envelope("/status", 200, Json::obj([("ok", Json::from(true))]), None);
        match &env {
            Json::Obj(pairs) => {
                let names: Vec<&str> = pairs.iter().map(|(n, _)| n.as_str()).collect();
                assert_eq!(names, WIRE_FIELDS);
            }
            other => panic!("envelope must be an object, got {other:?}"),
        }
        assert_eq!(env.get("status").and_then(Json::as_u64), Some(200));
        assert_eq!(env.get("error"), Some(&Json::Null));
    }

    #[test]
    fn sweep_request_round_trips() {
        let doc = sweep_request(&["k1".into(), "k2".into()], &["fig07".into()]);
        let parsed = parse_sweep(&doc).expect("round-trips");
        assert_eq!(parsed.keys, vec!["k1", "k2"]);
        assert_eq!(parsed.figures, vec!["fig07"]);
    }

    #[test]
    fn version_mismatch_and_empty_requests_are_rejected() {
        let mut doc = sweep_request(&["k".into()], &[]);
        doc.push("ignored", Json::Null);
        assert!(parse_sweep(&doc).is_ok());

        let bad = Json::obj([("format_version", Json::from(9u64))]);
        let err = parse_sweep(&bad).unwrap_err();
        assert!(err.contains("format_version 9"), "{err}");

        let empty = Json::obj([("format_version", Json::from(WIRE_VERSION))]);
        assert!(parse_sweep(&empty).unwrap_err().contains("names no"));

        let mistyped = Json::obj([
            ("format_version", Json::from(WIRE_VERSION)),
            ("keys", Json::from("not-an-array")),
        ]);
        assert!(parse_sweep(&mistyped).is_err());
    }
}
