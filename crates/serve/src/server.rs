//! The daemon core: routing, the in-memory result cache, single-flight
//! job deduplication, and admission control.
//!
//! [`Server`] is generic over an [`Engine`] — the thing that knows how
//! to turn a cache key into a report document (in production the
//! experiment harness; in tests a mock). Everything service-shaped
//! lives here: concurrent identical requests for one cache key share a
//! single execution (single-flight), finished cells are held warm in
//! memory and persisted to the content-addressed [`ResultStore`], and
//! a bounded admission queue sheds load with `429 Too Many Requests` +
//! `Retry-After` instead of queueing unboundedly.
//!
//! [`Server::handle`] maps one parsed request to one response with no
//! I/O on the connection and no clock reads, so request/response pairs
//! are deterministic and pinned as golden files; the nondeterministic
//! parts (latency epochs, the accept loop) live in [`Server::serve`].

use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufReader, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use tdc_util::http::{read_request, write_response, Request, Response};
use tdc_util::obs::{EventKind, EventLog, LogHistogram};
use tdc_util::{run_tasks_telemetry, Json};

use crate::store::ResultStore;
use crate::wire;

/// In-memory result-cache counters reported by an [`Engine`] (the
/// harness `ResultCache` hit/miss/insert counters in production).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a cached report.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Reports inserted.
    pub inserts: u64,
}

/// What the server needs from the experiment side. One instance backs
/// the whole daemon lifetime, holding its result cache warm across
/// requests.
pub trait Engine: Send + Sync + 'static {
    /// Every figure id this engine can materialize, in catalog order.
    fn figure_ids(&self) -> Vec<String>;
    /// The job cache keys behind one figure id; `None` if unknown.
    fn figure_keys(&self, id: &str) -> Option<Vec<String>>;
    /// Whether `key` names a cell in this engine's job plan.
    fn has_key(&self, key: &str) -> bool;
    /// Number of distinct cells in the job plan.
    fn key_count(&self) -> usize;
    /// Executes (or fetches from its own cache) the cell for `key`,
    /// returning the report document.
    fn execute(&self, key: &str) -> Result<Json, String>;
    /// Generates the figure document for `id`; all of the figure's
    /// cells have been materialized via [`Engine::execute`] or
    /// [`Engine::preload`] first.
    fn figure(&self, id: &str) -> Result<Json, String>;
    /// Seeds the engine's cache with a previously-stored report for
    /// `key` (warm start from the disk store).
    fn preload(&self, key: &str, report: &Json) -> Result<(), String>;
    /// The engine-side result-cache counters.
    fn cache_stats(&self) -> CacheStats;
}

/// Daemon tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads per sweep (feeds
    /// [`tdc_util::pool::run_tasks_telemetry`]).
    pub jobs: usize,
    /// Admission-queue capacity: the maximum number of concurrently
    /// admitted work requests (`/sweep`, `/figure`); beyond it the
    /// server answers `429` with `Retry-After`.
    pub queue: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            jobs: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            queue: 32,
        }
    }
}

/// Locks `m`, recovering the data from a poisoned mutex. A poisoned
/// lock means some other request's thread panicked; every critical
/// section here leaves its map/counter consistent at each step, so the
/// daemon keeps serving instead of cascading the panic through every
/// thread that touches the same lock.
fn locked<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One `/metrics` epoch record: a completed request with its latency.
#[derive(Debug, Clone)]
struct EpochRecord {
    epoch: u64,
    endpoint: String,
    status: u16,
    micros: u64,
}

/// How many recent epochs `/metrics` retains.
const EPOCH_RING: usize = 64;

/// Service counters (observability only; never part of deterministic
/// response payloads except on `/metrics` and `/status` themselves).
#[derive(Default)]
struct Metrics {
    sweep: AtomicU64,
    figure: AtomicU64,
    status: AtomicU64,
    metrics: AtomicU64,
    shutdown: AtomicU64,
    other: AtomicU64,
    executed: AtomicU64,
    mem_hits: AtomicU64,
    deduped: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    peak_active: AtomicU64,
    epoch: AtomicU64,
    epochs: Mutex<VecDeque<EpochRecord>>,
    latency_us: Mutex<LogHistogram>,
    // Cumulative scheduler counters over every pooled sweep batch
    // (DESIGN.md §16); wall-clock observability, `/metrics` only.
    pool_batches: AtomicU64,
    pool_tasks: AtomicU64,
    pool_owned: AtomicU64,
    pool_stolen: AtomicU64,
    pool_steal_attempts: AtomicU64,
    pool_steal_failures: AtomicU64,
    pool_busy_ns: AtomicU64,
    pool_idle_ns: AtomicU64,
}

/// A single in-flight computation for one cache key; followers block
/// on `ready` until the leader fills `slot`.
struct Flight {
    slot: Mutex<Option<Result<Arc<Json>, String>>>,
    ready: Condvar,
}

/// The long-running sweep service. See the module docs for the split
/// between deterministic routing ([`Server::handle`]) and the socket
/// loop ([`Server::serve`]).
pub struct Server<E: Engine> {
    engine: E,
    cfg: ServerConfig,
    store: Option<ResultStore>,
    store_loaded: AtomicU64,
    mem: Mutex<BTreeMap<String, Arc<Json>>>,
    flights: Mutex<BTreeMap<String, Arc<Flight>>>,
    active: Mutex<usize>,
    metrics: Metrics,
    next_id: AtomicU64,
    event_log: Option<EventLog>,
    stop: AtomicBool,
    addr: Mutex<Option<SocketAddr>>,
    conns: Mutex<usize>,
    conns_idle: Condvar,
}

/// Releases one admission slot on drop, so every early return from a
/// work endpoint gives its slot back.
struct AdmissionSlot<'a, E: Engine>(&'a Server<E>);

impl<E: Engine> Drop for AdmissionSlot<'_, E> {
    fn drop(&mut self) {
        let mut active = locked(&self.0.active);
        *active = active.saturating_sub(1);
    }
}

impl<E: Engine> Server<E> {
    /// A server over `engine`, optionally persisting results to
    /// `store`.
    pub fn new(engine: E, cfg: ServerConfig, store: Option<ResultStore>) -> Self {
        Self {
            engine,
            cfg: ServerConfig {
                jobs: cfg.jobs.max(1),
                queue: cfg.queue,
            },
            store,
            store_loaded: AtomicU64::new(0),
            mem: Mutex::new(BTreeMap::new()),
            flights: Mutex::new(BTreeMap::new()),
            active: Mutex::new(0),
            metrics: Metrics::default(),
            next_id: AtomicU64::new(0),
            event_log: None,
            stop: AtomicBool::new(false),
            addr: Mutex::new(None),
            conns: Mutex::new(0),
            conns_idle: Condvar::new(),
        }
    }

    /// The engine backing this server.
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Attaches a structured event log (DESIGN.md §13). Every request
    /// handled after this writes span-correlated JSONL events tagged
    /// with the request id.
    pub fn with_event_log(mut self, log: EventLog) -> Self {
        self.event_log = Some(log);
        self
    }

    /// Emits one structured event, if an event log is attached.
    /// Fire-and-forget: logging never fails a request.
    fn event(&self, rid: u64, span: &str, kind: EventKind, detail: &str) {
        if let Some(log) = &self.event_log {
            log.emit(rid, span, kind, detail);
        }
    }

    /// Records one request latency into the Prometheus histogram.
    /// Public so exposition-format golden tests can feed deterministic
    /// samples; production callers go through the private
    /// `Server::record_epoch`.
    pub fn observe_latency_us(&self, micros: u64) {
        locked(&self.metrics.latency_us).record(micros);
    }

    /// Whether `/shutdown` has been requested.
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Preloads every valid, in-plan entry from the disk store into the
    /// engine cache and the in-memory map. Returns `(loaded, skipped)`;
    /// out-of-plan entries (other scales/seeds) stay on disk untouched.
    pub fn warm_load(&self) -> io::Result<(usize, usize)> {
        let Some(store) = &self.store else {
            return Ok((0, 0));
        };
        let (entries, mut skipped) = store.load_all()?;
        let mut loaded = 0usize;
        for (key, doc) in entries {
            if !self.engine.has_key(&key) {
                continue;
            }
            if self.engine.preload(&key, &doc).is_ok() {
                locked(&self.mem).insert(key, Arc::new(doc));
                loaded += 1;
            } else {
                skipped += 1;
            }
        }
        self.store_loaded.store(loaded as u64, Ordering::Relaxed);
        Ok((loaded, skipped))
    }

    // -- deterministic request handling ---------------------------------

    /// Maps one request to one response. Pure with respect to the
    /// connection: no socket I/O, no clock reads — the counters it
    /// bumps only surface through `/status` and `/metrics`.
    pub fn handle(&self, req: &Request) -> Response {
        let rid = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.event(
            rid,
            "request",
            EventKind::RequestBegin,
            &format!("{} {}", req.method, req.target),
        );
        let resp = self.handle_with_id(req, rid);
        self.event(
            rid,
            "request",
            EventKind::RequestEnd,
            &format!("{} {}", req.target, resp.status),
        );
        resp
    }

    /// [`Server::handle`] with the request id already assigned; the id
    /// tags every structured event this request produces, including
    /// those emitted from pool workers while materializing cells.
    fn handle_with_id(&self, req: &Request, rid: u64) -> Response {
        match (req.method.as_str(), req.target.as_str()) {
            ("POST", "/sweep") => {
                self.metrics.sweep.fetch_add(1, Ordering::Relaxed);
                self.sweep(rid, &req.target, &req.body)
            }
            ("GET", target) if target.starts_with("/figure/") => {
                self.metrics.figure.fetch_add(1, Ordering::Relaxed);
                self.figure_endpoint(rid, target)
            }
            ("GET", "/status") => {
                self.metrics.status.fetch_add(1, Ordering::Relaxed);
                self.status_endpoint()
            }
            ("GET", "/metrics") => {
                self.metrics.metrics.fetch_add(1, Ordering::Relaxed);
                self.metrics_endpoint()
            }
            ("GET", "/metrics.prom") => {
                self.metrics.metrics.fetch_add(1, Ordering::Relaxed);
                Response::new(
                    200,
                    "text/plain; version=0.0.4",
                    self.prometheus_text().into_bytes(),
                )
            }
            ("POST", "/shutdown") => {
                self.metrics.shutdown.fetch_add(1, Ordering::Relaxed);
                self.stop.store(true, Ordering::SeqCst);
                self.ok("/shutdown", Json::obj([("stopping", Json::from(true))]))
            }
            (_, target @ ("/sweep" | "/status" | "/metrics" | "/metrics.prom" | "/shutdown")) => {
                self.metrics.other.fetch_add(1, Ordering::Relaxed);
                self.error(target, 405, &format!("method {} not allowed here", req.method))
            }
            (_, target) if target.starts_with("/figure/") => {
                self.metrics.other.fetch_add(1, Ordering::Relaxed);
                self.error(target, 405, &format!("method {} not allowed here", req.method))
            }
            (_, target) => {
                self.metrics.other.fetch_add(1, Ordering::Relaxed);
                self.error(target, 404, &format!("no such endpoint '{target}'"))
            }
        }
    }

    fn sweep(&self, rid: u64, endpoint: &str, body: &[u8]) -> Response {
        let text = match std::str::from_utf8(body) {
            Ok(t) => t,
            Err(_) => return self.error(endpoint, 400, "request body is not UTF-8"),
        };
        let doc = match Json::parse(text) {
            Ok(d) => d,
            Err(e) => return self.error(endpoint, 400, &format!("malformed JSON: {e}")),
        };
        let parsed = match wire::parse_sweep(&doc) {
            Ok(p) => p,
            Err(e) => return self.error(endpoint, 400, &e),
        };

        let mut keys = parsed.keys;
        for fig in &parsed.figures {
            match self.engine.figure_keys(fig) {
                Some(more) => keys.extend(more),
                None => return self.error(endpoint, 404, &format!("unknown figure '{fig}'")),
            }
        }
        keys.sort();
        keys.dedup();
        if let Some(bad) = keys.iter().find(|k| !self.engine.has_key(k)) {
            return self.error(endpoint, 404, &format!("unknown cache key '{bad}'"));
        }

        let Some(_slot) = self.admit() else {
            return self.saturated(rid, endpoint);
        };
        match self.materialize(rid, &keys) {
            Ok(cells) => self.ok(endpoint, Json::obj([("cells", Json::Arr(cells))])),
            Err(e) => self.error(endpoint, 500, &e),
        }
    }

    fn figure_endpoint(&self, rid: u64, target: &str) -> Response {
        let id = target.strip_prefix("/figure/").unwrap_or_default();
        let Some(keys) = self.engine.figure_keys(id) else {
            return self.error(target, 404, &format!("unknown figure '{id}'"));
        };
        let Some(_slot) = self.admit() else {
            return self.saturated(rid, target);
        };
        let mut keys = keys;
        keys.sort();
        keys.dedup();
        if let Err(e) = self.materialize(rid, &keys) {
            return self.error(target, 500, &e);
        }
        match self.engine.figure(id) {
            Ok(doc) => self.ok(target, doc),
            Err(e) => self.error(target, 500, &e),
        }
    }

    fn status_endpoint(&self) -> Response {
        let figures = Json::Arr(
            self.engine
                .figure_ids()
                .into_iter()
                .map(Json::from)
                .collect(),
        );
        let data = Json::obj([
            ("figures", figures),
            ("plan_cells", Json::from(self.engine.key_count())),
            (
                "cached_cells",
                Json::from(locked(&self.mem).len()),
            ),
            (
                "queue",
                Json::obj([
                    (
                        "active",
                        Json::from(*locked(&self.active)),
                    ),
                    ("capacity", Json::from(self.cfg.queue)),
                ]),
            ),
            (
                "store",
                match &self.store {
                    Some(s) => Json::from(s.dir().display().to_string()),
                    None => Json::Null,
                },
            ),
        ]);
        self.ok("/status", data)
    }

    fn metrics_endpoint(&self) -> Response {
        let m = &self.metrics;
        let count = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        let requests = Json::obj([
            ("sweep", count(&m.sweep)),
            ("figure", count(&m.figure)),
            ("status", count(&m.status)),
            ("metrics", count(&m.metrics)),
            ("shutdown", count(&m.shutdown)),
            ("other", count(&m.other)),
        ]);
        let work = Json::obj([
            ("executed", count(&m.executed)),
            ("mem_hits", count(&m.mem_hits)),
            (
                "store_hits",
                Json::from(self.store.as_ref().map_or(0, |s| s.counters().hits)),
            ),
            ("deduped", count(&m.deduped)),
            ("rejected", count(&m.rejected)),
            ("errors", count(&m.errors)),
        ]);
        let cache = self.engine.cache_stats();
        let result_cache = Json::obj([
            ("hits", Json::from(cache.hits)),
            ("misses", Json::from(cache.misses)),
            ("inserts", Json::from(cache.inserts)),
        ]);
        let store = match &self.store {
            Some(s) => {
                let c = s.counters();
                Json::obj([
                    ("dir", Json::from(s.dir().display().to_string())),
                    ("loaded", Json::from(self.store_loaded.load(Ordering::Relaxed))),
                    ("hits", Json::from(c.hits)),
                    ("misses", Json::from(c.misses)),
                    ("persisted", Json::from(c.persisted)),
                ])
            }
            None => Json::Null,
        };
        let queue = Json::obj([
            ("active", Json::from(*locked(&self.active))),
            ("capacity", Json::from(self.cfg.queue)),
            ("peak", count(&m.peak_active)),
        ]);
        let epochs = Json::Arr(
            locked(&m.epochs)
                .iter()
                .map(|e| {
                    Json::obj([
                        ("epoch", Json::from(e.epoch)),
                        ("endpoint", Json::from(e.endpoint.as_str())),
                        ("status", Json::from(u64::from(e.status))),
                        ("micros", Json::from(e.micros)),
                    ])
                })
                .collect(),
        );
        let pool = Json::obj([
            ("batches", count(&m.pool_batches)),
            ("tasks", count(&m.pool_tasks)),
            ("owned", count(&m.pool_owned)),
            ("stolen", count(&m.pool_stolen)),
            ("steal_attempts", count(&m.pool_steal_attempts)),
            ("steal_failures", count(&m.pool_steal_failures)),
            ("busy_ns", count(&m.pool_busy_ns)),
            ("idle_ns", count(&m.pool_idle_ns)),
        ]);
        let data = Json::obj([
            ("requests", requests),
            ("work", work),
            ("result_cache", result_cache),
            ("store", store),
            ("queue", queue),
            ("pool", pool),
            ("epochs", epochs),
        ]);
        self.ok("/metrics", data)
    }

    /// The `/metrics.prom` body: the same counters as `/metrics` plus
    /// the request-latency histogram, in Prometheus text exposition
    /// format (version 0.0.4). Public so golden tests can pin the
    /// exact bytes.
    pub fn prometheus_text(&self) -> String {
        let m = &self.metrics;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut out = String::new();
        out.push_str("# HELP tdc_requests_total Requests served, by endpoint.\n");
        out.push_str("# TYPE tdc_requests_total counter\n");
        for (endpoint, counter) in [
            ("sweep", &m.sweep),
            ("figure", &m.figure),
            ("status", &m.status),
            ("metrics", &m.metrics),
            ("shutdown", &m.shutdown),
            ("other", &m.other),
        ] {
            out.push_str(&format!(
                "tdc_requests_total{{endpoint=\"{endpoint}\"}} {}\n",
                load(counter)
            ));
        }
        out.push_str("# HELP tdc_work_total Cell-work outcomes, by kind.\n");
        out.push_str("# TYPE tdc_work_total counter\n");
        let store_hits = self.store.as_ref().map_or(0, |s| s.counters().hits);
        for (kind, value) in [
            ("executed", load(&m.executed)),
            ("mem_hits", load(&m.mem_hits)),
            ("store_hits", store_hits),
            ("deduped", load(&m.deduped)),
            ("rejected", load(&m.rejected)),
            ("errors", load(&m.errors)),
        ] {
            out.push_str(&format!("tdc_work_total{{kind=\"{kind}\"}} {value}\n"));
        }
        out.push_str("# HELP tdc_request_duration_us Request latency in microseconds.\n");
        out.push_str("# TYPE tdc_request_duration_us histogram\n");
        let hist = locked(&m.latency_us);
        for (le, cumulative) in hist.prometheus_buckets() {
            out.push_str(&format!(
                "tdc_request_duration_us_bucket{{le=\"{le}\"}} {cumulative}\n"
            ));
        }
        out.push_str(&format!(
            "tdc_request_duration_us_bucket{{le=\"+Inf\"}} {}\n",
            hist.count()
        ));
        out.push_str(&format!("tdc_request_duration_us_sum {}\n", hist.sum()));
        out.push_str(&format!("tdc_request_duration_us_count {}\n", hist.count()));
        out
    }

    // -- cell materialization -------------------------------------------

    /// Materializes every key (deduplicated, sorted by the caller) and
    /// returns the deterministic `cells` array.
    fn materialize(&self, rid: u64, keys: &[String]) -> Result<Vec<Json>, String> {
        let results = if keys.len() <= 1 {
            // Fast path for the single-cell request mix: no pool spawn.
            keys.iter().map(|k| self.cell(rid, k)).collect::<Vec<_>>()
        } else {
            let (results, telemetry) =
                run_tasks_telemetry(keys, self.cfg.jobs, |_, k| self.cell(rid, k));
            self.record_pool(&telemetry);
            results
        };
        let mut cells = Vec::with_capacity(keys.len());
        for (key, result) in keys.iter().zip(results) {
            let doc = result.map_err(|e| format!("cell '{key}' failed: {e}"))?;
            cells.push(Json::obj([
                ("key", Json::from(key.as_str())),
                ("report", (*doc).clone()),
            ]));
        }
        Ok(cells)
    }

    /// Folds one sweep batch's scheduler telemetry (DESIGN.md §16)
    /// into the cumulative `/metrics` pool counters.
    fn record_pool(&self, telemetry: &tdc_util::obs::PoolTelemetry) {
        let m = &self.metrics;
        m.pool_batches.fetch_add(1, Ordering::Relaxed);
        for w in &telemetry.workers {
            m.pool_tasks.fetch_add(w.tasks, Ordering::Relaxed);
            m.pool_owned.fetch_add(w.owned, Ordering::Relaxed);
            m.pool_stolen.fetch_add(w.stolen, Ordering::Relaxed);
            m.pool_steal_attempts
                .fetch_add(w.steal_attempts, Ordering::Relaxed);
            m.pool_steal_failures
                .fetch_add(w.steal_failures, Ordering::Relaxed);
            m.pool_busy_ns.fetch_add(w.busy_ns, Ordering::Relaxed);
            m.pool_idle_ns.fetch_add(w.idle_ns, Ordering::Relaxed);
        }
    }

    /// One cell: memory cache, then disk store, then a single-flight
    /// execution shared with every concurrent request for this key.
    fn cell(&self, rid: u64, key: &str) -> Result<Arc<Json>, String> {
        if let Some(doc) = locked(&self.mem).get(key).cloned() {
            self.metrics.mem_hits.fetch_add(1, Ordering::Relaxed);
            self.event(rid, "cell", EventKind::MemHit, key);
            return Ok(doc);
        }
        if let Some(store) = &self.store {
            if let Some(doc) = store.get(key) {
                // A stored report the engine rejects (e.g. written by a
                // newer report schema) falls through to re-execution.
                if self.engine.preload(key, &doc).is_ok() {
                    self.event(rid, "cell", EventKind::StoreHit, key);
                    let doc = Arc::new(doc);
                    locked(&self.mem).insert(key.to_string(), doc.clone());
                    return Ok(doc);
                }
            }
        }

        let (flight, leader) = {
            let mut flights = locked(&self.flights);
            match flights.get(key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        slot: Mutex::new(None),
                        ready: Condvar::new(),
                    });
                    flights.insert(key.to_string(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !leader {
            self.metrics.deduped.fetch_add(1, Ordering::Relaxed);
            self.event(rid, "cell", EventKind::DedupJoin, key);
            let mut slot = locked(&flight.slot);
            while slot.is_none() {
                slot = flight
                    .ready
                    .wait(slot)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            return slot
                .clone()
                .unwrap_or_else(|| Err("flight slot empty after wakeup".to_string()));
        }

        self.event(rid, "cell", EventKind::Execute, key);
        let result = self.engine.execute(key).map(Arc::new);
        if result.is_err() {
            self.event(rid, "cell", EventKind::EngineError, key);
        }
        if let Ok(doc) = &result {
            self.metrics.executed.fetch_add(1, Ordering::Relaxed);
            if let Some(store) = &self.store {
                // Persistence is best-effort: a full disk must not fail
                // the request the simulation just answered.
                let _ = store.put(key, doc);
            }
            locked(&self.mem).insert(key.to_string(), Arc::clone(doc));
        }
        *locked(&flight.slot) = Some(result.clone());
        flight.ready.notify_all();
        locked(&self.flights).remove(key);
        result
    }

    // -- admission control ----------------------------------------------

    /// Takes one admission slot, or `None` when the queue is full.
    fn admit(&self) -> Option<AdmissionSlot<'_, E>> {
        let mut active = locked(&self.active);
        if *active >= self.cfg.queue {
            return None;
        }
        *active += 1;
        self.metrics
            .peak_active
            .fetch_max(*active as u64, Ordering::Relaxed);
        Some(AdmissionSlot(self))
    }

    // -- response builders ----------------------------------------------

    fn ok(&self, endpoint: &str, data: Json) -> Response {
        let body = wire::envelope(endpoint, 200, data, None).pretty();
        Response::new(200, "application/json", body.into_bytes())
    }

    fn error(&self, endpoint: &str, status: u16, message: &str) -> Response {
        self.metrics.errors.fetch_add(1, Ordering::Relaxed);
        let body = wire::envelope(endpoint, status, Json::Null, Some(message)).pretty();
        Response::new(status, "application/json", body.into_bytes())
    }

    fn saturated(&self, rid: u64, endpoint: &str) -> Response {
        self.metrics.rejected.fetch_add(1, Ordering::Relaxed);
        self.event(rid, "request", EventKind::Reject, endpoint);
        let body = wire::envelope(
            endpoint,
            429,
            Json::Null,
            Some("admission queue is full; retry shortly"),
        )
        .pretty();
        let mut resp = Response::new(429, "application/json", body.into_bytes());
        resp.headers.push(("Retry-After".to_string(), "1".to_string()));
        resp
    }

    // -- the socket loop ------------------------------------------------

    /// Accepts connections until `/shutdown`; one thread per
    /// connection, one request per connection (`Connection: close`).
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> io::Result<()> {
        let addr = listener.local_addr()?;
        *locked(&self.addr) = Some(addr);
        for stream in listener.incoming() {
            if self.stopping() {
                break;
            }
            let Ok(stream) = stream else { continue };
            let server = Arc::clone(self);
            *locked(&self.conns) += 1;
            std::thread::spawn(move || {
                server.handle_conn(stream);
                *locked(&server.conns) -= 1;
                server.conns_idle.notify_all();
            });
        }
        // Wait out in-flight handlers so every response written around
        // the stop flip is fully delivered before the process exits.
        let mut n = locked(&self.conns);
        while *n > 0 {
            n = self
                .conns_idle
                .wait(n)
                .unwrap_or_else(PoisonError::into_inner);
        }
        Ok(())
    }

    fn handle_conn(&self, stream: TcpStream) {
        let mut reader = BufReader::new(&stream);
        let req = match read_request(&mut reader) {
            Ok(r) => r,
            Err(e) => {
                if !e.contains("closed before request") {
                    let _ = write_response(&mut &stream, &self.error("/", 400, &e));
                }
                return;
            }
        };
        // Latency is telemetry for /metrics epochs only; it never
        // reaches a deterministic payload.
        let started = std::time::Instant::now(); // tdc-lint: allow(time-source)
        let resp = self.handle(&req);
        let _ = write_response(&mut &stream, &resp);
        self.record_epoch(&req, resp.status, started.elapsed().as_micros() as u64);
        // Graceful close: half-close our side, then wait (bounded) for
        // the peer to finish reading and close. Dropping the socket
        // outright can turn into a reset that discards response bytes
        // still in flight — fatal when `/shutdown` ends the process
        // right after this handler.
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
        let _ = stream.shutdown(Shutdown::Write);
        let mut scratch = [0u8; 256];
        while matches!(reader.read(&mut scratch), Ok(n) if n > 0) {}
        // Only the handler that served `/shutdown` wakes the accept
        // loop — a sibling handler observing the flag mid-flight must
        // not trigger the exit while responses are still being written.
        if self.stopping() && req.target == "/shutdown" {
            if let Some(addr) = *locked(&self.addr) {
                let _ = TcpStream::connect(addr);
            }
        }
    }

    /// Appends one per-request epoch to the bounded `/metrics` ring and
    /// the unbounded latency histogram behind `/metrics.prom`.
    fn record_epoch(&self, req: &Request, status: u16, micros: u64) {
        self.observe_latency_us(micros);
        let number = self.metrics.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        let mut ring = locked(&self.metrics.epochs);
        if ring.len() == EPOCH_RING {
            ring.pop_front();
        }
        ring.push_back(EpochRecord {
            epoch: number,
            endpoint: req.target.clone(),
            status,
            micros,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::time::Duration;

    /// A two-figure mock: `figA` = {cell:a, cell:b}, `figB` = {cell:b}.
    struct MockEngine {
        delay: Duration,
        executed: AtomicU64,
    }

    impl MockEngine {
        fn new(delay: Duration) -> Self {
            Self {
                delay,
                executed: AtomicU64::new(0),
            }
        }
    }

    impl Engine for MockEngine {
        fn figure_ids(&self) -> Vec<String> {
            vec!["figA".into(), "figB".into()]
        }
        fn figure_keys(&self, id: &str) -> Option<Vec<String>> {
            match id {
                "figA" => Some(vec!["cell:a".into(), "cell:b".into()]),
                "figB" => Some(vec!["cell:b".into()]),
                _ => None,
            }
        }
        fn has_key(&self, key: &str) -> bool {
            key == "cell:a" || key == "cell:b"
        }
        fn key_count(&self) -> usize {
            2
        }
        fn execute(&self, key: &str) -> Result<Json, String> {
            std::thread::sleep(self.delay);
            self.executed.fetch_add(1, Ordering::SeqCst);
            Ok(Json::obj([
                ("key", Json::from(key)),
                ("value", Json::from(key.len() as u64)),
            ]))
        }
        fn figure(&self, id: &str) -> Result<Json, String> {
            Ok(Json::obj([("id", Json::from(id))]))
        }
        fn preload(&self, _key: &str, _report: &Json) -> Result<(), String> {
            Ok(())
        }
        fn cache_stats(&self) -> CacheStats {
            CacheStats::default()
        }
    }

    fn server(queue: usize) -> Server<MockEngine> {
        Server::new(
            MockEngine::new(Duration::ZERO),
            ServerConfig { jobs: 2, queue },
            None,
        )
    }

    fn sweep_req(keys: &[&str]) -> Request {
        let keys: Vec<String> = keys.iter().map(|s| s.to_string()).collect();
        Request::new("POST", "/sweep", wire::sweep_request(&keys, &[]).pretty())
    }

    fn body_json(resp: &Response) -> Json {
        Json::parse(std::str::from_utf8(&resp.body).expect("utf8 body")).expect("json body")
    }

    #[test]
    fn sweep_materializes_and_caches() {
        let srv = server(4);
        let first = srv.handle(&sweep_req(&["cell:a"]));
        assert_eq!(first.status, 200);
        let second = srv.handle(&sweep_req(&["cell:a"]));
        assert_eq!(second.body, first.body, "warm hit must be byte-identical");
        assert_eq!(srv.engine().executed.load(Ordering::SeqCst), 1);
        assert_eq!(srv.metrics.mem_hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn concurrent_identical_sweeps_share_one_execution() {
        let srv = Arc::new(Server::new(
            MockEngine::new(Duration::from_millis(50)),
            ServerConfig { jobs: 2, queue: 8 },
            None,
        ));
        let responses: Vec<Response> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let srv = Arc::clone(&srv);
                    scope.spawn(move || srv.handle(&sweep_req(&["cell:b"])))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        assert!(responses.iter().all(|r| r.status == 200));
        assert!(responses.iter().all(|r| r.body == responses[0].body));
        assert_eq!(
            srv.engine().executed.load(Ordering::SeqCst),
            1,
            "single-flight must collapse concurrent identical jobs"
        );
        let dedup = srv.metrics.deduped.load(Ordering::Relaxed)
            + srv.metrics.mem_hits.load(Ordering::Relaxed);
        assert_eq!(dedup, 3, "three requests rode the leader's execution");
    }

    #[test]
    fn saturated_queue_rejects_with_retry_after() {
        let srv = server(0);
        let resp = srv.handle(&sweep_req(&["cell:a"]));
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("Retry-After"), Some("1"));
        assert_eq!(srv.metrics.rejected.load(Ordering::Relaxed), 1);
        assert_eq!(srv.engine().executed.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn admission_slots_are_released() {
        let srv = server(1);
        assert_eq!(srv.handle(&sweep_req(&["cell:a"])).status, 200);
        // The slot came back: the next request is admitted again.
        assert_eq!(srv.handle(&sweep_req(&["cell:b"])).status, 200);
        assert_eq!(*locked(&srv.active), 0);
    }

    #[test]
    fn unknown_routes_figures_and_keys() {
        let srv = server(4);
        assert_eq!(srv.handle(&Request::new("GET", "/nope", Vec::new())).status, 404);
        assert_eq!(srv.handle(&Request::new("GET", "/sweep", Vec::new())).status, 405);
        let unknown_fig = Request::new(
            "POST",
            "/sweep",
            wire::sweep_request(&[], &["figZ".into()]).pretty(),
        );
        assert_eq!(srv.handle(&unknown_fig).status, 404);
        assert_eq!(srv.handle(&sweep_req(&["cell:zzz"])).status, 404);
    }

    #[test]
    fn figure_endpoint_materializes_cells_first() {
        let srv = server(4);
        let resp = srv.handle(&Request::new("GET", "/figure/figA", Vec::new()));
        assert_eq!(resp.status, 200);
        assert_eq!(srv.engine().executed.load(Ordering::SeqCst), 2);
        let env = body_json(&resp);
        assert_eq!(
            env.get("data").and_then(|d| d.get("id")).and_then(Json::as_str),
            Some("figA")
        );
    }

    #[test]
    fn store_round_trip_and_warm_load() {
        let dir = std::env::temp_dir().join(format!("tdc-serve-warm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).expect("store opens");
        let srv = Server::new(
            MockEngine::new(Duration::ZERO),
            ServerConfig { jobs: 1, queue: 4 },
            Some(store),
        );
        assert_eq!(srv.handle(&sweep_req(&["cell:a"])).status, 200);
        assert_eq!(srv.engine().executed.load(Ordering::SeqCst), 1);

        // A fresh server over the same directory warm-starts from disk.
        let store2 = ResultStore::open(&dir).expect("store reopens");
        let srv2 = Server::new(
            MockEngine::new(Duration::ZERO),
            ServerConfig { jobs: 1, queue: 4 },
            Some(store2),
        );
        let (loaded, skipped) = srv2.warm_load().expect("warm load");
        assert_eq!((loaded, skipped), (1, 0));
        assert_eq!(srv2.handle(&sweep_req(&["cell:a"])).status, 200);
        assert_eq!(
            srv2.engine().executed.load(Ordering::SeqCst),
            0,
            "warm-started cell must not re-execute"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_sets_the_stop_flag() {
        let srv = server(4);
        assert!(!srv.stopping());
        let resp = srv.handle(&Request::new("POST", "/shutdown", Vec::new()));
        assert_eq!(resp.status, 200);
        assert!(srv.stopping());
    }

    #[test]
    fn metrics_endpoint_reports_counters() {
        let srv = server(4);
        srv.handle(&sweep_req(&["cell:a"]));
        srv.handle(&sweep_req(&["cell:a"]));
        let env = body_json(&srv.handle(&Request::new("GET", "/metrics", Vec::new())));
        let work = env.get("data").and_then(|d| d.get("work")).expect("work object");
        assert_eq!(work.get("executed").and_then(Json::as_u64), Some(1));
        assert_eq!(work.get("mem_hits").and_then(Json::as_u64), Some(1));
    }
}
