//! Client-side helpers: one-shot request exchange over TCP and the
//! latency-percentile math the `tdc serve --bench` load generator
//! reports with.

use std::io::BufReader;
use std::net::TcpStream;
use tdc_util::http::{read_response, write_request, Request, Response};

/// Sends one request to `addr` (`host:port`) and reads the response.
/// One connection per exchange, matching the server's `Connection:
/// close` discipline.
pub fn exchange(addr: &str, req: &Request) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    write_request(&mut &stream, req).map_err(|e| format!("send to {addr}: {e}"))?;
    read_response(&mut BufReader::new(&stream))
}

/// Nearest-rank percentile of an ascending-sorted slice; `p` in
/// `[0, 100]`. Returns `0.0` for an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v, 50.0), 50.0);
        assert_eq!(percentile(&v, 90.0), 90.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }
}
