//! `tdc serve` — the persistent sweep service (DESIGN.md §12).
//!
//! Batch `tdc all` pays the full simulation cost on every invocation;
//! this crate turns the same job plan into a long-running daemon that
//! holds results warm across requests. It is engine-agnostic: the
//! [`Engine`] trait is the seam to the experiment harness (implemented
//! there as `PlanEngine`, keeping the dependency arrow pointing the
//! same way as every other crate's — toward `tdc-util` only).
//!
//! * [`wire`] — the versioned `serve-envelope` JSON wire format, kept
//!   in sync with DESIGN.md §12 by the `wire-schema` lint rule.
//! * [`store`] — the disk-persisted content-addressed result store
//!   (one `cell-<fnv64>.json` per job cache key), shared with batch
//!   `tdc all --cache-dir` warm starts.
//! * [`server`] — routing, the in-memory warm cache, single-flight
//!   dedup of concurrent identical jobs, and bounded-queue admission
//!   control (`429` + `Retry-After`).
//! * [`client`] — one-shot request exchange and percentile math for
//!   the `tdc serve --bench` load generator.

pub mod client;
pub mod server;
pub mod store;
pub mod wire;

pub use client::{exchange, percentile};
pub use server::{CacheStats, Engine, Server, ServerConfig};
pub use store::{ResultStore, StoreCounters, STORE_VERSION};
pub use wire::{envelope, parse_sweep, sweep_request, SweepRequest, WIRE_FIELDS, WIRE_VERSION};
