//! The disk-persisted, content-addressed result store.
//!
//! One JSON file per job cache key, named by the FNV-1a hash of the
//! key (the same [`tdc_util::fnv1a_64`] that `tdc shard` partitions
//! on), each wrapping the cell's report document in a versioned
//! entry:
//!
//! ```text
//! <cache-dir>/cell-<fnv64 hex>.json
//!   { "format_version": 1, "key": "<cache key>", "report": { ... } }
//! ```
//!
//! Because cache keys are injective over `(workload, org, config)`,
//! addressing by key is safe across scales and seeds: entries written
//! at one configuration simply never match lookups from another. Both
//! the `tdc serve` daemon and batch `tdc all --cache-dir` read and
//! write this layout, so warm results are shared between the two.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use tdc_util::{fnv1a_64, Json};

/// Version stamp of the on-disk entry wrapper; entries with any other
/// version are ignored on load (never silently reinterpreted).
pub const STORE_VERSION: u64 = 1;

/// Counters for one store's lifetime (observability only).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Lookups satisfied from disk.
    pub hits: u64,
    /// Lookups that found no usable entry.
    pub misses: u64,
    /// Entries written.
    pub persisted: u64,
}

/// A directory of `cell-*.json` entries keyed by job cache key.
pub struct ResultStore {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    persisted: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) the store at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            persisted: AtomicU64::new(0),
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a cache key.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("cell-{:016x}.json", fnv1a_64(key)))
    }

    /// The report document stored for `key`, if a valid entry exists.
    /// Unreadable, unparseable, version-mismatched, or key-mismatched
    /// entries count as misses (a colliding or corrupt file must never
    /// masquerade as a result).
    pub fn get(&self, key: &str) -> Option<Json> {
        let report = fs::read_to_string(self.path_for(key))
            .ok()
            .and_then(|text| Json::parse(&text).ok())
            .and_then(|entry| Self::unwrap_entry(&entry, Some(key)));
        match report {
            Some(doc) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(doc)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Validates one entry document and extracts `(key, report)`.
    /// `expect_key` additionally pins the stored key.
    fn unwrap_entry(entry: &Json, expect_key: Option<&str>) -> Option<Json> {
        if entry.get("format_version").and_then(Json::as_u64) != Some(STORE_VERSION) {
            return None;
        }
        let key = entry.get("key").and_then(Json::as_str)?;
        if expect_key.is_some_and(|want| want != key) {
            return None;
        }
        entry.get("report").cloned()
    }

    /// Persists `report` under `key`. Existing entries are left alone:
    /// the store is content-addressed, so an entry for a key can only
    /// ever hold one value and the first write wins.
    pub fn put(&self, key: &str, report: &Json) -> io::Result<()> {
        let path = self.path_for(key);
        if path.exists() {
            return Ok(());
        }
        let entry = Json::obj([
            ("format_version", Json::from(STORE_VERSION)),
            ("key", Json::from(key)),
            ("report", report.clone()),
        ]);
        // Write-then-rename so a concurrent reader never sees a torn
        // entry; the final name only appears once the bytes are down.
        let tmp = path.with_extension("tmp");
        fs::write(&tmp, entry.pretty())?;
        fs::rename(&tmp, &path)?;
        self.persisted.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Loads every valid entry, sorted by key. Invalid files are
    /// counted, not fatal: a store survives partial corruption and
    /// format-version bumps by re-simulating the affected cells.
    pub fn load_all(&self) -> io::Result<(Vec<(String, Json)>, usize)> {
        let mut entries = Vec::new();
        let mut skipped = 0usize;
        for dirent in fs::read_dir(&self.dir)? {
            let path = dirent?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !name.starts_with("cell-") || !name.ends_with(".json") {
                continue;
            }
            let parsed = fs::read_to_string(&path)
                .ok()
                .and_then(|text| Json::parse(&text).ok());
            let keyed = parsed.as_ref().and_then(|entry| {
                let key = entry.get("key").and_then(Json::as_str)?.to_string();
                Self::unwrap_entry(entry, None).map(|report| (key, report))
            });
            match keyed {
                Some(pair) => entries.push(pair),
                None => skipped += 1,
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Ok((entries, skipped))
    }

    /// Number of `cell-*.json` files currently on disk.
    pub fn len(&self) -> io::Result<usize> {
        let mut n = 0;
        for dirent in fs::read_dir(&self.dir)? {
            let path = dirent?.path();
            let name = path.file_name().and_then(|f| f.to_str()).unwrap_or("");
            if name.starts_with("cell-") && name.ends_with(".json") {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Whether the store currently holds no entries.
    pub fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Lifetime counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            persisted: self.persisted.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!("tdc-store-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::open(dir).expect("store opens")
    }

    fn doc(v: u64) -> Json {
        Json::obj([("value", Json::from(v))])
    }

    #[test]
    fn put_get_round_trip_and_counters() {
        let store = tmp_store("roundtrip");
        assert!(store.get("k1").is_none());
        store.put("k1", &doc(7)).expect("put");
        assert_eq!(store.get("k1"), Some(doc(7)));
        assert_eq!(store.len().expect("len"), 1);
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.persisted), (1, 1, 1));
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn first_write_wins() {
        let store = tmp_store("firstwins");
        store.put("k", &doc(1)).expect("put");
        store.put("k", &doc(2)).expect("second put is a no-op");
        assert_eq!(store.get("k"), Some(doc(1)));
        assert_eq!(store.counters().persisted, 1);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_all_skips_invalid_entries() {
        let store = tmp_store("loadall");
        store.put("b", &doc(2)).expect("put");
        store.put("a", &doc(1)).expect("put");
        // A version-mismatched entry and a junk file: both skipped.
        fs::write(
            store.dir().join("cell-0000000000000bad.json"),
            Json::obj([
                ("format_version", Json::from(99u64)),
                ("key", Json::from("zzz")),
                ("report", doc(9)),
            ])
            .pretty(),
        )
        .expect("write stale entry");
        fs::write(store.dir().join("cell-notjson.json"), "{oops").expect("write junk");
        fs::write(store.dir().join("README.txt"), "ignored").expect("write bystander");

        let (entries, skipped) = store.load_all().expect("load");
        let keys: Vec<&str> = entries.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["a", "b"], "sorted by key, stale/junk skipped");
        assert_eq!(skipped, 2);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let store = tmp_store("keymismatch");
        store.put("real-key", &doc(5)).expect("put");
        // Copy the entry to the filename another key hashes to: the
        // stored key no longer matches, so the lookup must miss.
        let target = store.path_for("other-key");
        fs::copy(store.path_for("real-key"), target).expect("copy");
        assert!(store.get("other-key").is_none());
        let _ = fs::remove_dir_all(store.dir());
    }
}
