//! Observability contracts of the daemon core (DESIGN.md §13):
//!
//! 1. **Prometheus exposition is stable.** The `/metrics.prom` body for
//!    a fixed request history and a fixed set of latency samples is
//!    pinned as a golden file (regenerate with `TDC_UPDATE_GOLDEN=1
//!    cargo test -p tdc-serve --test obs`).
//! 2. **Structured events are span-correlated.** Every request writes
//!    schema-exact JSONL lines to the event log, and the request id
//!    ties a `request` span's begin/end to the `cell` events it caused.

use std::fs;
use std::path::PathBuf;
use tdc_serve::{CacheStats, Engine, Server, ServerConfig};
use tdc_util::http::Request;
use tdc_util::obs::{EventLog, EVENT_FIELDS};
use tdc_util::Json;

/// Deterministic two-figure mock (same shape as the wire goldens).
struct MockEngine;

impl Engine for MockEngine {
    fn figure_ids(&self) -> Vec<String> {
        vec!["figA".into(), "figB".into()]
    }
    fn figure_keys(&self, id: &str) -> Option<Vec<String>> {
        match id {
            "figA" => Some(vec!["cell:a".into(), "cell:b".into()]),
            "figB" => Some(vec!["cell:b".into()]),
            _ => None,
        }
    }
    fn has_key(&self, key: &str) -> bool {
        key == "cell:a" || key == "cell:b"
    }
    fn key_count(&self) -> usize {
        2
    }
    fn execute(&self, key: &str) -> Result<Json, String> {
        Ok(Json::obj([
            ("key", Json::from(key)),
            ("value", Json::from(key.len() as u64)),
        ]))
    }
    fn figure(&self, id: &str) -> Result<Json, String> {
        Ok(Json::obj([("id", Json::from(id))]))
    }
    fn preload(&self, _key: &str, _report: &Json) -> Result<(), String> {
        Ok(())
    }
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }
}

fn sweep_req(key: &str) -> Request {
    Request::new(
        "POST",
        "/sweep",
        tdc_serve::sweep_request(&[key.to_string()], &[]).pretty(),
    )
}

#[test]
fn prometheus_exposition_matches_golden() {
    let srv = Server::new(MockEngine, ServerConfig { jobs: 1, queue: 4 }, None);
    // A fixed request history: one execute, one memory hit, one figure
    // (which executes cell:b and mem-hits cell:a), one routing miss.
    assert_eq!(srv.handle(&sweep_req("cell:a")).status, 200);
    assert_eq!(srv.handle(&sweep_req("cell:a")).status, 200);
    assert_eq!(srv.handle(&Request::new("GET", "/figure/figA", Vec::new())).status, 200);
    assert_eq!(srv.handle(&Request::new("GET", "/nope", Vec::new())).status, 404);
    // Deterministic latency samples standing in for record_epoch.
    for us in [5u64, 90, 110, 3_000, 250_000] {
        srv.observe_latency_us(us);
    }

    let text = srv.prometheus_text();
    assert!(text.contains("# TYPE tdc_requests_total counter"));
    assert!(text.contains("# TYPE tdc_work_total counter"));
    assert!(text.contains("# TYPE tdc_request_duration_us histogram"));
    assert!(text.contains("tdc_request_duration_us_bucket{le=\"+Inf\"} 5"));
    assert!(text.contains("tdc_request_duration_us_count 5"));
    assert!(text.ends_with('\n'), "exposition must end with a newline");

    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/metrics.prom");
    if std::env::var_os("TDC_UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        fs::write(&path, &text).expect("write golden");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); regenerate with TDC_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        want, text,
        "Prometheus exposition drifted from golden; if intentional, regenerate with \
         TDC_UPDATE_GOLDEN=1 cargo test -p tdc-serve --test obs"
    );
}

#[test]
fn event_log_lines_are_schema_exact_and_span_correlated() {
    let path = std::env::temp_dir().join(format!("tdc-serve-events-{}.jsonl", std::process::id()));
    let _ = fs::remove_file(&path);
    let log = EventLog::create(&path).expect("event log opens");
    let srv = Server::new(MockEngine, ServerConfig { jobs: 1, queue: 4 }, None)
        .with_event_log(log);

    assert_eq!(srv.handle(&sweep_req("cell:a")).status, 200); // execute
    assert_eq!(srv.handle(&sweep_req("cell:a")).status, 200); // mem hit

    let text = fs::read_to_string(&path).expect("event log readable");
    let lines: Vec<Json> = text
        .lines()
        .map(|l| Json::parse(l).expect("event line is valid JSON"))
        .collect();
    // 2 requests x (begin + one cell event + end).
    assert_eq!(lines.len(), 6, "{text}");

    // Every line carries exactly the documented fields, in order.
    for line in &lines {
        let Json::Obj(pairs) = line else {
            panic!("event line is not an object: {line:?}")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, EVENT_FIELDS, "event schema drifted");
        assert_eq!(line.get("format_version").and_then(Json::as_u64), Some(1));
    }

    let field = |i: usize, name: &str| -> String {
        lines[i].get(name).and_then(Json::as_str).expect("string field").to_string()
    };
    // Request 1: begin -> execute -> end, all under one request id.
    assert_eq!(field(0, "request_id"), "r000001");
    assert_eq!(field(0, "span"), "request");
    assert_eq!(field(0, "event"), "request_begin");
    assert_eq!(field(0, "detail"), "POST /sweep");
    assert_eq!(field(1, "request_id"), "r000001");
    assert_eq!(field(1, "span"), "cell");
    assert_eq!(field(1, "event"), "execute");
    assert_eq!(field(1, "detail"), "cell:a");
    assert_eq!(field(2, "request_id"), "r000001");
    assert_eq!(field(2, "event"), "request_end");
    assert_eq!(field(2, "detail"), "/sweep 200");
    // Request 2 gets a fresh id and rides the memory cache.
    assert_eq!(field(3, "request_id"), "r000002");
    assert_eq!(field(4, "request_id"), "r000002");
    assert_eq!(field(4, "event"), "mem_hit");
    assert_eq!(field(5, "event"), "request_end");

    let _ = fs::remove_file(&path);
}

#[test]
fn saturated_requests_log_a_reject_event() {
    let path = std::env::temp_dir().join(format!("tdc-serve-reject-{}.jsonl", std::process::id()));
    let _ = fs::remove_file(&path);
    let log = EventLog::create(&path).expect("event log opens");
    let srv = Server::new(MockEngine, ServerConfig { jobs: 1, queue: 0 }, None)
        .with_event_log(log);
    assert_eq!(srv.handle(&sweep_req("cell:a")).status, 429);

    let text = fs::read_to_string(&path).expect("event log readable");
    let events: Vec<String> = text
        .lines()
        .map(|l| {
            Json::parse(l)
                .expect("valid JSON")
                .get("event")
                .and_then(Json::as_str)
                .expect("event field")
                .to_string()
        })
        .collect();
    assert_eq!(events, ["request_begin", "reject", "request_end"]);
    let _ = fs::remove_file(&path);
}
