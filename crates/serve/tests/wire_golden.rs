//! Golden-filed wire-format tests: one request/response byte pair per
//! endpoint, plus the negative paths (malformed JSON, unknown figure,
//! version mismatch, saturated queue).
//!
//! Each case runs against a fresh server over a deterministic mock
//! engine, so the exact bytes that cross the wire are a pure function
//! of the request — which is what lets them live in `tests/golden/`
//! (regenerate with `TDC_UPDATE_GOLDEN=1 cargo test -p tdc-serve
//! --test wire_golden`).

use std::fs;
use std::path::PathBuf;
use tdc_serve::{CacheStats, Engine, Server, ServerConfig};
use tdc_util::http::{write_request, write_response, Request};
use tdc_util::Json;

/// Deterministic two-figure mock: `figA` = {cell:a, cell:b},
/// `figB` = {cell:b}; no timing, no randomness.
struct MockEngine;

impl Engine for MockEngine {
    fn figure_ids(&self) -> Vec<String> {
        vec!["figA".into(), "figB".into()]
    }
    fn figure_keys(&self, id: &str) -> Option<Vec<String>> {
        match id {
            "figA" => Some(vec!["cell:a".into(), "cell:b".into()]),
            "figB" => Some(vec!["cell:b".into()]),
            _ => None,
        }
    }
    fn has_key(&self, key: &str) -> bool {
        key == "cell:a" || key == "cell:b"
    }
    fn key_count(&self) -> usize {
        2
    }
    fn execute(&self, key: &str) -> Result<Json, String> {
        Ok(Json::obj([
            ("key", Json::from(key)),
            ("value", Json::from(key.len() as u64)),
        ]))
    }
    fn figure(&self, id: &str) -> Result<Json, String> {
        Ok(Json::obj([
            ("id", Json::from(id)),
            ("cells", Json::from(self.figure_keys(id).map_or(0, |k| k.len()))),
        ]))
    }
    fn preload(&self, _key: &str, _report: &Json) -> Result<(), String> {
        Ok(())
    }
    fn cache_stats(&self) -> CacheStats {
        CacheStats::default()
    }
}

fn server(queue: usize) -> Server<MockEngine> {
    Server::new(MockEngine, ServerConfig { jobs: 1, queue }, None)
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}"))
}

/// Compares `bytes` against the named golden file (or rewrites it
/// under `TDC_UPDATE_GOLDEN=1`).
fn assert_golden(name: &str, bytes: &[u8]) {
    let path = golden_path(name);
    if std::env::var_os("TDC_UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        fs::write(&path, bytes).expect("write golden");
        eprintln!("updated {}", path.display());
        return;
    }
    let want = fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read golden {} ({e}); regenerate with TDC_UPDATE_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        String::from_utf8_lossy(&want),
        String::from_utf8_lossy(bytes),
        "{name} drifted from golden; if intentional, regenerate with \
         TDC_UPDATE_GOLDEN=1 cargo test -p tdc-serve --test wire_golden"
    );
}

/// Runs one case end to end: pins the request bytes, handles it on a
/// fresh server, pins the response bytes, and returns the status.
fn golden_case(name: &str, srv: &Server<MockEngine>, req: &Request) -> u16 {
    let mut req_bytes = Vec::new();
    write_request(&mut req_bytes, req).expect("serialize request");
    assert_golden(&format!("{name}.request.http"), &req_bytes);

    let resp = srv.handle(req);
    let mut resp_bytes = Vec::new();
    write_response(&mut resp_bytes, &resp).expect("serialize response");
    assert_golden(&format!("{name}.response.http"), &resp_bytes);
    resp.status
}

fn sweep_body(keys: &[&str], figures: &[&str]) -> Vec<u8> {
    let keys: Vec<String> = keys.iter().map(|s| s.to_string()).collect();
    let figures: Vec<String> = figures.iter().map(|s| s.to_string()).collect();
    tdc_serve::sweep_request(&keys, &figures).pretty().into_bytes()
}

#[test]
fn sweep_ok() {
    let req = Request::new("POST", "/sweep", sweep_body(&["cell:a"], &["figB"]));
    assert_eq!(golden_case("sweep_ok", &server(4), &req), 200);
}

#[test]
fn figure_ok() {
    let req = Request::new("GET", "/figure/figA", Vec::new());
    assert_eq!(golden_case("figure_ok", &server(4), &req), 200);
}

#[test]
fn status_ok() {
    let req = Request::new("GET", "/status", Vec::new());
    assert_eq!(golden_case("status_ok", &server(4), &req), 200);
}

#[test]
fn metrics_ok() {
    let req = Request::new("GET", "/metrics", Vec::new());
    assert_eq!(golden_case("metrics_ok", &server(4), &req), 200);
}

#[test]
fn shutdown_ok() {
    let req = Request::new("POST", "/shutdown", Vec::new());
    let srv = server(4);
    assert_eq!(golden_case("shutdown_ok", &srv, &req), 200);
    assert!(srv.stopping());
}

#[test]
fn malformed_json_is_400() {
    let req = Request::new("POST", "/sweep", b"{not json".to_vec());
    assert_eq!(golden_case("malformed_json", &server(4), &req), 400);
}

#[test]
fn deep_nesting_is_400() {
    // 500 nested arrays: the JSON parser's depth cap must turn a
    // hostile payload into a wire error, not a worker stack overflow.
    let body = format!("{}0{}", "[".repeat(500), "]".repeat(500)).into_bytes();
    let req = Request::new("POST", "/sweep", body);
    assert_eq!(golden_case("deep_nesting", &server(4), &req), 400);
}

#[test]
fn unknown_figure_is_404() {
    let req = Request::new("POST", "/sweep", sweep_body(&[], &["figZ"]));
    assert_eq!(golden_case("unknown_figure", &server(4), &req), 404);
}

#[test]
fn version_mismatch_is_400() {
    let body = Json::obj([
        ("format_version", Json::from(99u64)),
        ("keys", Json::Arr(vec![Json::from("cell:a")])),
    ])
    .pretty()
    .into_bytes();
    let req = Request::new("POST", "/sweep", body);
    assert_eq!(golden_case("version_mismatch", &server(4), &req), 400);
}

#[test]
fn saturated_queue_is_429_with_retry_after() {
    let req = Request::new("POST", "/sweep", sweep_body(&["cell:a"], &[]));
    let srv = server(0); // zero admission slots: always saturated
    assert_eq!(golden_case("saturated_queue", &srv, &req), 429);
    let resp = srv.handle(&req);
    assert_eq!(resp.header("Retry-After"), Some("1"));
}
